// What-if serving (ISSUE 10 satellite): hypothetical probability changes
// answered through the shared lineage circuit WITHOUT committing a
// mutation. The contract under test:
//
//   * route parity — the circuit overlay route and the mutated-copy
//     fallback route return bit-identical answers (the circuit replays
//     the engine's arithmetic verbatim, and both routes apply the same
//     inclusion filter);
//   * no-commit — the document is bitwise untouched afterwards (uid,
//     DebugString) and the session keeps serving the committed baseline;
//   * guard flips — overrides that cross a recorded guard (a probability
//     driven to 0 or 1) silently fall back to the copy route, still
//     returning exact answers;
//   * validation — what-if overrides are vetted like real mutations:
//     probabilities in [0,1], mux/exp budgets respected, addresses valid;
//   * plumbing — DocumentStore::WhatIf reuses the standing circuit
//     session, ShardedCorpus::WhatIf routes to the owning shard, and the
//     what-if counter ticks.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "prob/eval_session.h"
#include "pxml/parser.h"
#include "serve/document_store.h"
#include "serve/sharded_corpus.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

PDocument PersonnelDoc(int persons = 10) {
  Rng rng(411);
  return PersonnelPDocument(rng, persons, 0.3, 0.4);
}

// Mux alternatives (pid, current edge probability): lowering one below its
// current value always leaves the mux budget valid.
std::vector<std::pair<PersistentId, double>> MuxAlternatives(
    const PDocument& pd) {
  std::vector<std::pair<PersistentId, double>> out;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.detached(n)) continue;
    const NodeId parent = pd.parent(n);
    if (parent != kNullNode && !pd.ordinary(parent) &&
        pd.kind(parent) == PKind::kMux) {
      out.push_back({pd.pid(n), pd.edge_prob(n)});
    }
  }
  return out;
}

EvalOptions CircuitOptions() {
  EvalOptions options;
  options.backend = BackendKind::kCircuit;
  return options;
}

void ExpectSameAnswers(const std::vector<PidProb>& got,
                       const std::vector<PidProb>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pid, want[i].pid);
    EXPECT_EQ(got[i].prob, want[i].prob);  // Bit-identical routes.
  }
}

// A small document with an exp distribution, built programmatically (exp
// nodes have no text syntax): a(k(exp{e,e})) with Pr({e1}) = 0.3 and
// Pr({e1,e2}) = 0.5.
PDocument ExpDoc() {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("a"), 1);
  const NodeId k = pd.AddOrdinary(root, Intern("k"), 1.0, 2);
  const NodeId exp = pd.AddExp(k);
  pd.AddOrdinary(exp, Intern("e"), 1.0, 3);
  pd.AddOrdinary(exp, Intern("e"), 1.0, 4);
  pd.SetExpDistribution(exp, {{{0}, 0.3}, {{0, 1}, 0.5}});
  EXPECT_TRUE(pd.Validate().ok());
  return pd;
}

TEST(WhatIfTest, CircuitRouteMatchesMutatedCopyRouteBitwise) {
  const PDocument pd = PersonnelDoc();
  ViewServer server;
  EvalSession circuit(pd, CircuitOptions());
  EvalSession copy_route(pd);  // kAuto backend: always the fallback route.

  const auto alternatives = MuxAlternatives(pd);
  ASSERT_GE(alternatives.size(), 3u);
  Rng rng(77);
  const std::vector<Pattern> queries = {
      Tp("IT-personnel//person/bonus"),
      Tp("IT-personnel//person[name/Rick]/bonus")};
  for (int round = 0; round < 4; ++round) {
    std::vector<WhatIfChange> changes;
    for (int i = 0; i < 3; ++i) {
      const auto& [pid, initial] =
          alternatives[rng.NextBounded(alternatives.size())];
      // Strictly inside (0, initial): never flips a recorded guard, so the
      // circuit route genuinely serves (parity would hold either way, but
      // this keeps the test pointed at the overlay path).
      changes.push_back(
          WhatIfChange::Edge(pid, initial * (0.1 + 0.8 * rng.NextDouble())));
    }
    for (const Pattern& q : queries) {
      const auto via_circuit = server.WhatIf(&circuit, q, changes);
      const auto via_copy = server.WhatIf(&copy_route, q, changes);
      ASSERT_TRUE(via_circuit.ok()) << via_circuit.status().message();
      ASSERT_TRUE(via_copy.ok()) << via_copy.status().message();
      ExpectSameAnswers(*via_circuit, *via_copy);
    }
  }
}

// The pid and current probability of some live "Rick" name alternative —
// a change there provably moves [name/Rick]/bonus answers.
std::pair<PersistentId, double> SomeRick(const PDocument& pd) {
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && !pd.detached(n) && pd.label(n) == Intern("Rick")) {
      return {pd.pid(n), pd.edge_prob(n)};
    }
  }
  ADD_FAILURE() << "no Rick alternative found";
  return {kNullPid, 0.0};
}

TEST(WhatIfTest, DocumentIsUntouchedAndBaselineKeepsServing) {
  const PDocument pd = PersonnelDoc();
  ViewServer server;
  EvalSession circuit(pd, CircuitOptions());
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus");

  const uint64_t uid_before = pd.uid();
  const std::string state_before = pd.DebugString();

  const auto baseline = server.WhatIf(&circuit, q, {});
  ASSERT_TRUE(baseline.ok());
  const auto [pid, initial] = SomeRick(pd);
  const auto hypothetical =
      server.WhatIf(&circuit, q, {WhatIfChange::Edge(pid, initial * 0.5)});
  ASSERT_TRUE(hypothetical.ok());

  // The what-if moved at least one answer...
  bool moved = false;
  ASSERT_EQ(baseline->size(), hypothetical->size());
  for (size_t i = 0; i < baseline->size(); ++i) {
    if ((*baseline)[i].prob != (*hypothetical)[i].prob) moved = true;
  }
  EXPECT_TRUE(moved);

  // ...while the document and the served baseline are bitwise unchanged.
  EXPECT_EQ(pd.uid(), uid_before);
  EXPECT_EQ(pd.DebugString(), state_before);
  const auto baseline_again = server.WhatIf(&circuit, q, {});
  ASSERT_TRUE(baseline_again.ok());
  ExpectSameAnswers(*baseline_again, *baseline);
  EXPECT_EQ(server.stats().whatifs, 3);
}

TEST(WhatIfTest, GuardFlippingOverridesFallBackAndStayExact) {
  const PDocument pd = PersonnelDoc();
  ViewServer server;
  EvalSession circuit(pd, CircuitOptions());
  EvalSession copy_route(pd);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus");

  // Driving a live alternative to exactly 0 flips its kIsZero guard: the
  // circuit declines the overlay and the session silently evaluates a
  // mutated copy instead. Answers must still be exact — and the circuit
  // must still serve the baseline afterwards (the decline left no residue).
  const auto alternatives = MuxAlternatives(pd);
  ASSERT_FALSE(alternatives.empty());
  const std::vector<WhatIfChange> changes = {
      WhatIfChange::Edge(alternatives.front().first, 0.0)};
  const auto baseline = server.WhatIf(&circuit, q, {});
  ASSERT_TRUE(baseline.ok());
  const auto via_circuit = server.WhatIf(&circuit, q, changes);
  const auto via_copy = server.WhatIf(&copy_route, q, changes);
  ASSERT_TRUE(via_circuit.ok()) << via_circuit.status().message();
  ASSERT_TRUE(via_copy.ok());
  ExpectSameAnswers(*via_circuit, *via_copy);
  const auto baseline_again = server.WhatIf(&circuit, q, {});
  ASSERT_TRUE(baseline_again.ok());
  ExpectSameAnswers(*baseline_again, *baseline);
}

TEST(WhatIfTest, ExpSlotOverridesReweightSubsets) {
  const PDocument pd = ExpDoc();
  ViewServer server;
  EvalSession circuit(pd, CircuitOptions());
  EvalSession copy_route(pd);
  const Pattern q = Tp("a/k/e");

  // Baseline: Pr(e1) = 0.3 + 0.5, Pr(e2) = 0.5.
  const auto baseline = server.WhatIf(&circuit, q, {});
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->size(), 2u);
  EXPECT_DOUBLE_EQ((*baseline)[0].prob, 0.8);
  EXPECT_DOUBLE_EQ((*baseline)[1].prob, 0.5);

  // Reweight subset {e1, e2} (slot 1 of the exp child 0 of pid 2) to 0.4.
  const std::vector<WhatIfChange> changes = {
      WhatIfChange::ExpSlot(2, 0, 1, 0.4)};
  const auto via_circuit = server.WhatIf(&circuit, q, changes);
  const auto via_copy = server.WhatIf(&copy_route, q, changes);
  ASSERT_TRUE(via_circuit.ok()) << via_circuit.status().message();
  ASSERT_TRUE(via_copy.ok());
  ASSERT_EQ(via_circuit->size(), 2u);
  EXPECT_DOUBLE_EQ((*via_circuit)[0].prob, 0.7);
  EXPECT_DOUBLE_EQ((*via_circuit)[1].prob, 0.4);
  ExpectSameAnswers(*via_circuit, *via_copy);
}

TEST(WhatIfTest, OverridesAreVettedLikeRealMutations) {
  // a(mux(b(c)@0.6, b(d)@0.3)): parser pids are preorder 0..5, so the
  // 0.6-branch b is pid 2 and the 0.3-branch b is pid 4.
  const auto parsed = ParsePDocument("a(mux(b(c)@0.6, b(d)@0.3))");
  ASSERT_TRUE(parsed.ok());
  const PDocument pd = *parsed;
  ViewServer server;
  EvalSession session(pd, CircuitOptions());
  const Pattern q = Tp("a/b");

  // Out-of-range probabilities.
  EXPECT_FALSE(server.WhatIf(&session, q, {WhatIfChange::Edge(4, 1.5)}).ok());
  EXPECT_FALSE(server.WhatIf(&session, q, {WhatIfChange::Edge(4, -0.1)}).ok());
  // Unknown pid.
  EXPECT_FALSE(
      server.WhatIf(&session, q, {WhatIfChange::Edge(999999, 0.5)}).ok());
  // The root has no incoming edge.
  EXPECT_FALSE(server.WhatIf(&session, q, {WhatIfChange::Edge(0, 0.5)}).ok());
  // Mux budget: 0.6 + 0.9 > 1 — exactly what Apply would reject.
  EXPECT_FALSE(server.WhatIf(&session, q, {WhatIfChange::Edge(4, 0.9)}).ok());
  // Within budget is fine (0.6 + 0.35 ≤ 1).
  EXPECT_TRUE(server.WhatIf(&session, q, {WhatIfChange::Edge(4, 0.35)}).ok());

  // Exp addressing.
  const PDocument exp_doc = ExpDoc();
  EvalSession exp_session(exp_doc, CircuitOptions());
  const Pattern eq = Tp("a/k/e");
  // dist_child_index that is not an exp child.
  EXPECT_FALSE(
      server.WhatIf(&exp_session, eq, {WhatIfChange::ExpSlot(2, 3, 0, 0.2)})
          .ok());
  // Slot out of range.
  EXPECT_FALSE(
      server.WhatIf(&exp_session, eq, {WhatIfChange::ExpSlot(2, 0, 5, 0.2)})
          .ok());
  // Exp budget: 0.3 + 0.8 > 1.
  EXPECT_FALSE(
      server.WhatIf(&exp_session, eq, {WhatIfChange::ExpSlot(2, 0, 1, 0.8)})
          .ok());
}

TEST(WhatIfTest, DocumentStoreReusesTheStandingSession) {
  ViewServer server;
  server.AddView("vbonus", Tp("IT-personnel//person/bonus"));
  DocumentStore store(&server);
  const PDocument pd = PersonnelDoc();
  ASSERT_TRUE(store.Put("docs", pd).ok());

  const Pattern q = Tp("IT-personnel//person/bonus");
  const auto alternatives = MuxAlternatives(pd);
  ASSERT_FALSE(alternatives.empty());
  const auto& [pid, initial] = alternatives.front();
  const std::vector<WhatIfChange> changes = {
      WhatIfChange::Edge(pid, initial * 0.25)};

  const uint64_t uid_before = store.Find("docs")->uid();
  const auto hypothetical = store.WhatIf("docs", q, changes);
  ASSERT_TRUE(hypothetical.ok()) << hypothetical.status().message();
  EXPECT_EQ(store.Find("docs")->uid(), uid_before);  // Nothing committed.

  // Committing the same change for real must serve exactly the what-if
  // answers (the what-if IS the post-commit evaluation, just not kept).
  ASSERT_TRUE(
      store.Apply("docs", {DocMutation::SetEdgeProb(pid, initial * 0.25)})
          .ok());
  const auto committed = store.WhatIf("docs", q, {});
  ASSERT_TRUE(committed.ok());
  ExpectSameAnswers(*hypothetical, *committed);

  // Unknown documents fail gracefully.
  EXPECT_FALSE(store.WhatIf("nope", q, changes).ok());
}

TEST(WhatIfTest, ShardedCorpusRoutesToTheOwningShard) {
  ShardedCorpusOptions options;
  options.shards = 3;
  ShardedCorpus corpus(options);
  corpus.AddView("vbonus", Tp("IT-personnel//person/bonus"));

  ViewServer twin_server;
  twin_server.AddView("vbonus", Tp("IT-personnel//person/bonus"));
  DocumentStore twin(&twin_server);

  const PDocument pd = PersonnelDoc();
  ASSERT_TRUE(corpus.Put("docs", pd).ok());
  ASSERT_TRUE(twin.Put("docs", pd).ok());

  const Pattern q = Tp("IT-personnel//person/bonus");
  const auto alternatives = MuxAlternatives(pd);
  ASSERT_FALSE(alternatives.empty());
  const std::vector<WhatIfChange> changes = {
      WhatIfChange::Edge(alternatives.front().first,
                         alternatives.front().second * 0.5)};
  const auto from_corpus = corpus.WhatIf("docs", q, changes);
  const auto from_twin = twin.WhatIf("docs", q, changes);
  ASSERT_TRUE(from_corpus.ok()) << from_corpus.status().message();
  ASSERT_TRUE(from_twin.ok());
  ExpectSameAnswers(*from_corpus, *from_twin);
  EXPECT_EQ(corpus.stats().whatifs, 1);
}

TEST(WhatIfTest, TransientServerFormMatchesSessionForm) {
  const PDocument pd = PersonnelDoc(6);
  ViewServer server;
  EvalSession circuit(pd, CircuitOptions());
  const Pattern q = Tp("IT-personnel//person/bonus");
  const auto alternatives = MuxAlternatives(pd);
  ASSERT_FALSE(alternatives.empty());
  const std::vector<WhatIfChange> changes = {
      WhatIfChange::Edge(alternatives.front().first,
                         alternatives.front().second * 0.5)};
  const auto via_session = server.WhatIf(&circuit, q, changes);
  const auto via_transient = server.WhatIf(pd, q, changes);
  ASSERT_TRUE(via_session.ok());
  ASSERT_TRUE(via_transient.ok());
  ExpectSameAnswers(*via_session, *via_transient);
}

}  // namespace
}  // namespace pxv
