// EvalSession and ProbBackend coverage: the 128-slot DP cap (regression for
// the old 64-node rejection), automatic exact→naive fallback, and the
// session's index / memoization behavior.

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "prob/backend.h"
#include "prob/eval_session.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// r / a / a / … (`n_as` a-steps), out at the chain's end.
Pattern Chain(int n_as) {
  Pattern q;
  PNodeId cur = q.AddRoot(Intern("r"));
  for (int i = 0; i < n_as; ++i) cur = q.AddChild(cur, Intern("a"), Axis::kChild);
  q.SetOut(cur);
  return q;
}

// r → ind(p) → a → a → … (`n_as` a-nodes, the first behind the ind edge).
PDocument ChainDoc(int n_as, double p) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("r"));
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  NodeId cur = pd.AddOrdinary(ind, Intern("a"), p);
  for (int i = 1; i < n_as; ++i) cur = pd.AddOrdinary(cur, Intern("a"));
  PXV_CHECK(pd.Validate().ok());
  return pd;
}

// Regression: the packed DP used to reject conjunctions over 64 query nodes
// although the key had room for 128. A 66-node pattern must evaluate on the
// exact backend.
TEST(EvalSessionTest, ConjunctionBeyond64Nodes) {
  const PDocument pd = ChainDoc(70, 0.5);
  const Pattern q = Chain(65);  // 66 nodes > the old 64-node cap.
  EvalSession session(pd, {BackendKind::kExact});
  EXPECT_NEAR(session.BooleanProbability(q), 0.5, 1e-12);
  EXPECT_STREQ(session.last_backend(), "exact-dp");
}

TEST(EvalSessionTest, TwoGoalConjunctionBeyond64TotalNodes) {
  const PDocument pd = ChainDoc(70, 0.5);
  const Pattern q1 = Chain(40);
  const Pattern q2 = Chain(39);  // 41 + 40 = 81 total nodes > 64.
  EvalSession session(pd, {BackendKind::kExact});
  EXPECT_NEAR(session.JointProbability({{&q1, nullptr}, {&q2, nullptr}}), 0.5,
              1e-12);
}

TEST(EvalSessionTest, ExactAcceptsExactlyAtTheCap) {
  const PDocument pd = ChainDoc(130, 0.5);
  const Pattern q = Chain(kMaxConjunctionSlots - 1);  // 128 nodes.
  EvalSession session(pd, {BackendKind::kExact});
  EXPECT_NEAR(session.BooleanProbability(q), 0.5, 1e-12);
}

// One past the cap: the exact backend declines and the naive oracle serves
// the answer (the chain document has just two worlds).
TEST(EvalSessionTest, AutoFallsBackToNaiveBeyondTheCap) {
  const PDocument pd = ChainDoc(135, 0.5);
  const Pattern q = Chain(kMaxConjunctionSlots);  // 129 nodes.
  EvalSession session(pd);
  EXPECT_NEAR(session.BooleanProbability(q), 0.5, 1e-12);
  EXPECT_STREQ(session.last_backend(), "naive");

  // Batched path falls back too: out sits at chain depth 130.
  const auto results = session.EvaluateTP(q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NEAR(results[0].prob, 0.5, 1e-12);
  EXPECT_STREQ(session.last_backend(), "naive");
}

TEST(EvalSessionTest, ExactOnlyDiesBeyondTheCap) {
  const PDocument pd = ChainDoc(135, 0.5);
  const Pattern q = Chain(kMaxConjunctionSlots);
  EvalSession session(pd, {BackendKind::kExact});
  EXPECT_DEATH(session.BooleanProbability(q), "declined");
}

TEST(EvalSessionTest, NaiveBackendAgreesWithExact) {
  Rng rng(77);
  DocGenOptions d;
  d.target_nodes = 12;
  d.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = Tp("root//l0");
  EvalSession exact(pd, {BackendKind::kExact});
  EvalSession naive(pd, {BackendKind::kNaive});
  const auto er = exact.EvaluateTP(q);
  const auto nr = naive.EvaluateTP(q);
  ASSERT_EQ(er.size(), nr.size());
  for (size_t i = 0; i < er.size(); ++i) {
    EXPECT_EQ(er[i].node, nr[i].node);
    EXPECT_NEAR(er[i].prob, nr[i].prob, 1e-9);
  }
  EXPECT_NEAR(exact.BooleanProbability(q), naive.BooleanProbability(q), 1e-9);
}

TEST(EvalSessionTest, LabelIndexMatchesScan) {
  const PDocument pd = paper::PDocPER();
  EvalSession session(pd);
  const Label bonus = Intern("bonus");
  std::vector<NodeId> scan;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == bonus) scan.push_back(n);
  }
  EXPECT_EQ(session.NodesWithLabel(bonus), scan);
  EXPECT_TRUE(session.NodesWithLabel(Intern("no-such-label")).empty());
}

TEST(EvalSessionTest, MemoizesBatchedResults) {
  const PDocument pd = paper::PDocPER();
  EvalSession session(pd);
  const Pattern q = paper::QueryBON();
  const auto first = session.EvaluateTP(q);
  EXPECT_EQ(session.cache_hits(), 0);
  const auto second = session.EvaluateTP(q);
  EXPECT_EQ(session.cache_hits(), 1);
  ASSERT_EQ(first.size(), second.size());
  // An isomorphic clone hits the same cache entry (canonical-form keying).
  session.EvaluateTP(q.Clone());
  EXPECT_EQ(session.cache_hits(), 2);
}

TEST(EvalSessionTest, RepeatedPointQueriesTriggerTheBatch) {
  const PDocument pd = paper::PDocPER();
  EvalSession session(pd);
  const Pattern q = paper::ViewV2BON();
  const NodeId n5 = pd.FindByPid(5);
  const NodeId n7 = pd.FindByPid(7);
  // First point query: a single anchored run, no cache involvement.
  EXPECT_NEAR(session.SelectionProbability(q, n5), 1.0, 1e-12);
  EXPECT_EQ(session.cache_hits(), 0);
  // Second point query on the same pattern computes the batch...
  EXPECT_NEAR(session.SelectionProbability(q, n7), 1.0, 1e-12);
  EXPECT_EQ(session.cache_hits(), 1);
  // ...and later points (and the batch itself) are lookups.
  EXPECT_NEAR(session.SelectionProbability(q, n5), 1.0, 1e-12);
  EXPECT_EQ(session.cache_hits(), 2);
  session.EvaluateTP(q);
  EXPECT_EQ(session.cache_hits(), 3);
  // A node the query never selects reads 0 from the batch.
  EXPECT_NEAR(session.SelectionProbability(q, pd.root()), 0.0, 1e-12);
}

TEST(EvalSessionTest, CachingCanBeDisabled) {
  const PDocument pd = paper::PDocPER();
  EvalOptions options;
  options.cache_results = false;
  EvalSession session(pd, options);
  const Pattern q = paper::QueryBON();
  session.EvaluateTP(q);
  session.EvaluateTP(q);
  EXPECT_EQ(session.cache_hits(), 0);
}

// The naive backend declines world explosions instead of dying, so kAuto
// sessions on large documents always take the exact path.
TEST(EvalSessionTest, NaiveDeclinesWorldExplosion) {
  Rng rng(5);
  const PDocument pd = PersonnelPDocument(rng, 40);  // 2^40+ worlds.
  NaiveBackend naive(/*max_worlds=*/1000);
  const Pattern q = Tp("IT-personnel//person");
  const auto r = naive.BatchAnchored(pd, {&q});
  EXPECT_FALSE(r.ok());
  EvalSession session(pd);
  EXPECT_GT(session.EvaluateTP(q).size(), 0u);
  EXPECT_STREQ(session.last_backend(), "exact-dp");
}

}  // namespace
}  // namespace pxv
