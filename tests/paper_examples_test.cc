// Consolidated reproduction of every numbered example of the paper that
// carries a concrete value or verdict. Each test names its example; the
// expected constants are the paper's published numbers.

#include <gtest/gtest.h>

#include <map>

#include "gen/paper.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/view_extension.h"
#include "pxml/worlds.h"
#include "rewrite/cindependence.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "rewrite/tp_rewrite.h"
#include "tp/containment.h"
#include "tp/eval.h"
#include "tp/ops.h"
#include "tp/parser.h"
#include "xml/canonical.h"

namespace pxv {
namespace {

// Example 1/2: the documents of Figures 1 and 2 are well-formed and shaped
// as described (Rick with laptop and pda bonuses; node n52 is a mux with
// children probabilities 0.7 / 0.3).
TEST(PaperTest, Examples1And2Shapes) {
  const Document d = paper::DocPER();
  EXPECT_EQ(d.size(), 17);
  EXPECT_EQ(LabelName(d.label(d.root())), "IT-personnel");
  const PDocument pd = paper::PDocPER();
  EXPECT_TRUE(pd.Validate().ok());
  // The mux under pda[51] has children with probabilities 0.7 and 0.3.
  const NodeId pda51 = pd.FindByPid(51);
  ASSERT_NE(pda51, kNullNode);
  const NodeId mux = pd.children(pda51)[0];
  EXPECT_EQ(pd.kind(mux), PKind::kMux);
  EXPECT_NEAR(pd.edge_prob(pd.children(mux)[0]), 0.7, 1e-12);
  EXPECT_NEAR(pd.edge_prob(pd.children(mux)[1]), 0.3, 1e-12);
}

// Example 3: Pr(d_PER) = 0.75 × 0.9 × 0.7 × 1 × 1 = 0.4725.
TEST(PaperTest, Example3WorldProbability) {
  const auto worlds = EnumerateWorlds(paper::PDocPER());
  ASSERT_TRUE(worlds.ok());
  const Document target = paper::DocPER();
  double prob = 0;
  for (const World& w : *worlds) {
    if (EqualWithPids(w.doc, target)) prob = w.prob;
  }
  EXPECT_NEAR(prob, 0.4725, 1e-12);
}

// Example 5: query answers over the deterministic document.
TEST(PaperTest, Example5Answers) {
  const Document d = paper::DocPER();
  EXPECT_EQ(Evaluate(paper::QueryRBON(), d).size(), 1u);
  EXPECT_EQ(Evaluate(paper::ViewV2BON(), d).size(), 2u);
}

// Example 6: probabilistic answers over P̂_PER.
TEST(PaperTest, Example6Probabilities) {
  const PDocument pd = paper::PDocPER();
  const NodeId n5 = pd.FindByPid(5);
  EXPECT_NEAR(SelectionProbability(pd, paper::QueryBON(), n5), 0.9, 1e-12);
  EXPECT_NEAR(SelectionProbability(pd, paper::ViewV1BON(), n5), 0.75, 1e-12);
  EXPECT_NEAR(SelectionProbability(pd, paper::QueryRBON(), n5), 0.9 * 0.75,
              1e-12);
  EXPECT_NEAR(SelectionProbability(pd, paper::ViewV2BON(), n5), 1.0, 1e-12);
  EXPECT_NEAR(SelectionProbability(pd, paper::ViewV2BON(), pd.FindByPid(7)),
              1.0, 1e-12);
}

// Example 9/10: structural calculus (asserted in detail in tp_ops_test).
TEST(PaperTest, Examples9And10) {
  const Pattern q = paper::QueryRBON();
  EXPECT_EQ(TokenCount(q), 2);
  EXPECT_TRUE(IsomorphicPatterns(
      QDoublePrime(q, 3), Tp("IT-personnel//person/bonus[laptop]")));
}

// Example 11: deterministic rewriting exists; the two p-documents are
// v-indistinguishable yet have different answers 0.325 vs 0.5 — no f_r.
TEST(PaperTest, Example11FullStory) {
  const Pattern q = paper::Query11();
  const Pattern v = paper::View11();
  EXPECT_TRUE(HasDeterministicTpRewriting(q, v));

  Rewriter rewriter;
  rewriter.AddView("v", v.Clone());
  const ViewExtensions e1 = rewriter.Materialize(paper::PDoc1());
  const ViewExtensions e2 = rewriter.Materialize(paper::PDoc2());
  EXPECT_EQ(ToPText(e1.at("v"), true), ToPText(e2.at("v"), true));

  const PDocument p1 = paper::PDoc1();
  const PDocument p2 = paper::PDoc2();
  EXPECT_NEAR(SelectionProbability(p1, q, p1.FindByPid(2)), 0.325, 1e-12);
  EXPECT_NEAR(SelectionProbability(p2, q, p2.FindByPid(2)), 0.5, 1e-12);

  // TPrewrite correctly refuses.
  EXPECT_TRUE(TPrewrite(q, {{"v", v}}).empty());
}

// Example 12: same story for unrestricted plans; answers 0.288 vs 0.264.
TEST(PaperTest, Example12FullStory) {
  const Pattern q = paper::Query12();
  const Pattern v = paper::View12();
  EXPECT_TRUE(HasDeterministicTpRewriting(q, v));

  Rewriter rewriter;
  rewriter.AddView("v", v.Clone());
  const ViewExtensions e3 = rewriter.Materialize(paper::PDoc3());
  const ViewExtensions e4 = rewriter.Materialize(paper::PDoc4());
  EXPECT_EQ(ToPText(e3.at("v"), true), ToPText(e4.at("v"), true));

  const PDocument p3 = paper::PDoc3();
  const PDocument p4 = paper::PDoc4();
  EXPECT_NEAR(
      SelectionProbability(p3, q, p3.FindByPid(paper::kPid12_D)), 0.288,
      1e-12);
  EXPECT_NEAR(
      SelectionProbability(p4, q, p4.FindByPid(paper::kPid12_D)), 0.264,
      1e-12);
  EXPECT_TRUE(TPrewrite(q, {{"v", v}}).empty());
}

// Example 13: f_r over (P̂_PER)_{v2BON} returns 0.9 for n5 and nothing else.
TEST(PaperTest, Example13Rewriting) {
  const auto rws =
      TPrewrite(paper::QueryBON(), {{"v2BON", paper::ViewV2BON()}});
  ASSERT_EQ(rws.size(), 1u);
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(paper::PDocPER());
  const auto results = ExecuteTpRewriting(rws[0], exts.at("v2BON"));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].pid, 5);
  EXPECT_NEAR(results[0].prob, 0.9, 1e-12);
}

// Example 14: the prefix-suffix u = 2 for v's last token b[e]/c/b/c.
TEST(PaperTest, Example14) {
  const Pattern v = paper::View12();
  EXPECT_EQ(MaxPrefixSuffix(TokenLabels(v, TokenCount(v) - 1)), 2);
}

// §4.1: q_BON ⊥ v1_BON; a[b] ̸⊥ a[c]; Example 11's v' ̸⊥ q''.
TEST(PaperTest, CIndependenceVerdicts) {
  EXPECT_TRUE(CIndependent(paper::QueryBON(), paper::ViewV1BON()));
  EXPECT_FALSE(CIndependent(Tp("a[b]/x"), Tp("a[c]/x")));
  EXPECT_FALSE(CIndependent(StripOutPredicates(paper::View11()),
                            QDoublePrime(paper::Query11(), 2)));
}

// Example 15: Pr(n5 ∈ q_RBON) = 0.75 × 0.9 ÷ 1 via v1_BON and the
// compensated v2_BON.
TEST(PaperTest, Example15Value) {
  const PDocument pd = paper::PDocPER();
  const NodeId n5 = pd.FindByPid(5);
  const double v1 = SelectionProbability(pd, paper::ViewV1BON(), n5);
  const double vcomp = SelectionProbability(
      pd, Tp("IT-personnel//person/bonus[laptop]"), n5);
  const double appearance = AppearanceProbability(pd, n5);
  EXPECT_NEAR(v1 * vcomp / appearance, 0.675, 1e-12);
  EXPECT_NEAR(SelectionProbability(pd, paper::QueryRBON(), n5),
              v1 * vcomp / appearance, 1e-12);
}

// Example 16's views are pairwise c-dependent (the paper's motivation for
// the decomposition system).
TEST(PaperTest, Example16Dependence) {
  EXPECT_FALSE(CIndependent(paper::View16(1), paper::View16(2)));
  EXPECT_FALSE(CIndependent(paper::View16(1), paper::View16(3)));
  EXPECT_FALSE(CIndependent(paper::View16(2), paper::View16(3)));
  // v4 = a//d carries no predicates: independent of everything.
  EXPECT_TRUE(CIndependent(paper::View16(1), paper::View16(4)));
}

}  // namespace
}  // namespace pxv
