// Concurrency stress for the serving layer, written to run under
// ThreadSanitizer (the CI tsan job builds with -fsanitize=thread): several
// threads hammer AnswerAll and Answer while another rematerializes the
// extension snapshot, plus a Label-pool contention test (the interner is the
// one process-wide mutable structure every layer shares).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gen/paper.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/thread_pool.h"
#include "xml/label.h"

namespace pxv {
namespace {

constexpr double kTol = 1e-9;

std::map<PersistentId, double> ToMap(const std::vector<PidProb>& pps) {
  std::map<PersistentId, double> m;
  for (const PidProb& pp : pps) m[pp.pid] = pp.prob;
  return m;
}

TEST(ServeStressTest, ConcurrentAnswerAllAndMaterialize) {
  ViewServer server;
  server.AddView("v1BON", paper::ViewV1BON());
  server.AddView("v2BON", paper::ViewV2BON());
  const PDocument pd = paper::PDocPER();
  server.Materialize(pd);

  // Reference answers, computed single-threaded.
  const auto ref_bon = server.Answer(paper::QueryBON());
  const auto ref_rbon = server.Answer(paper::QueryRBON());
  ASSERT_TRUE(ref_bon.has_value());
  ASSERT_TRUE(ref_rbon.has_value());
  const auto expect_bon = ToMap(*ref_bon);
  const auto expect_rbon = ToMap(*ref_rbon);

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Reader threads: batched and single answers, repeatedly.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const std::vector<Pattern> queries = {paper::QueryBON(),
                                            paper::QueryRBON()};
      for (int r = 0; r < kRounds; ++r) {
        const auto batch = server.AnswerAll(queries);
        if (batch.size() != 2 || !batch[0].has_value() ||
            !batch[1].has_value()) {
          ++failures;
          continue;
        }
        const auto got_bon = ToMap(*batch[0]);
        const auto got_rbon = ToMap(*batch[1]);
        if (got_bon.size() != expect_bon.size() ||
            got_rbon.size() != expect_rbon.size()) {
          ++failures;
          continue;
        }
        for (const auto& [pid, prob] : expect_bon) {
          const auto it = got_bon.find(pid);
          if (it == got_bon.end() || std::fabs(it->second - prob) > kTol) {
            ++failures;
          }
        }
      }
    });
  }
  // Writer thread: republishes the extension snapshot concurrently.
  threads.emplace_back([&] {
    for (int r = 0; r < kRounds; ++r) server.Materialize(pd);
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const ViewServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 2 + kThreads * kRounds * 2);
  EXPECT_EQ(stats.materializations, 1 + kRounds);
  // After the first two compiles every query hit the plan cache.
  EXPECT_EQ(stats.plan_cache_misses, 2);
  EXPECT_EQ(stats.plan_cache_hits, stats.queries - 2);
}

TEST(ServeStressTest, ConcurrentPlanCompilationConverges) {
  // Many threads race to compile the same (uncached) queries; the cache
  // must converge on one plan instance per canonical form.
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  server.SetExtensions({});
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const QueryPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Isomorphic variants map to the same cache slot.
      plans[t] = server.PlanFor(t % 2 == 0 ? Tp("a/b[c][d]") : Tp("a/b[d][c]"));
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[t].get(), plans[0].get()) << "thread " << t;
  }
  EXPECT_EQ(server.plan_cache().size(), 1u);
}

TEST(ServeStressTest, ParallelMaterializeMatchesSerial) {
  Rewriter rewriter;
  rewriter.AddView("v1BON", paper::ViewV1BON());
  rewriter.AddView("v2BON", paper::ViewV2BON());
  rewriter.AddView("names", Tp("IT-personnel//person/name"));
  rewriter.AddView("persons", Tp("IT-personnel//person"));
  const PDocument pd = paper::PDocPER();
  const ViewExtensions serial = rewriter.Materialize(pd);
  ThreadPool pool(4);
  const ViewExtensions parallel = rewriter.Materialize(pd, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& [name, ext] : serial) {
    const auto it = parallel.find(name);
    ASSERT_NE(it, parallel.end()) << name;
    EXPECT_EQ(ext.DebugString(), it->second.DebugString()) << name;
  }
}

TEST(LabelPoolStressTest, ConcurrentInternAndLookup) {
  // The interner must give one id per spelling under contention, and
  // LabelName must stay readable while other threads insert.
  constexpr int kThreads = 8;
  constexpr int kLabels = 200;
  std::vector<std::vector<Label>> ids(kThreads,
                                      std::vector<Label>(kLabels, 0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLabels; ++i) {
        const std::string name =
            "stress-label-" + std::to_string(i % (kLabels / 2));
        const Label l = Intern(name);
        ids[t][i] = l;
        if (LabelName(l) != name) ids[t][i] = ~Label{0};  // Poison on mismatch.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]) << "thread " << t;
  }
}

}  // namespace
}  // namespace pxv
