#include <gtest/gtest.h>

#include "xml/canonical.h"
#include "xml/document.h"
#include "xml/label.h"
#include "xml/parser.h"

namespace pxv {
namespace {

TEST(LabelTest, InternIsIdempotent) {
  EXPECT_EQ(Intern("bonus"), Intern("bonus"));
  EXPECT_NE(Intern("bonus"), Intern("laptop"));
  EXPECT_EQ(LabelName(Intern("bonus")), "bonus");
}

TEST(LabelTest, IdMarker) {
  const Label m = IdMarkerLabel(42);
  EXPECT_EQ(LabelName(m), "Id(42)");
  EXPECT_TRUE(IsIdMarkerLabel(m));
  EXPECT_FALSE(IsIdMarkerLabel(Intern("Identify")));
}

TEST(LabelTest, DocLabel) {
  EXPECT_EQ(LabelName(DocLabel("v1")), "doc(v1)");
}

TEST(DocumentTest, BuildAndNavigate) {
  Document d;
  const NodeId r = d.AddRoot(Intern("a"));
  const NodeId b = d.AddChild(r, Intern("b"));
  const NodeId c = d.AddChild(b, Intern("c"));
  EXPECT_EQ(d.size(), 3);
  EXPECT_EQ(d.root(), r);
  EXPECT_EQ(d.parent(c), b);
  EXPECT_EQ(d.Depth(r), 1);
  EXPECT_EQ(d.Depth(c), 3);
  EXPECT_TRUE(d.IsProperAncestor(r, c));
  EXPECT_FALSE(d.IsProperAncestor(c, r));
  EXPECT_FALSE(d.IsProperAncestor(b, b));
}

TEST(DocumentTest, DefaultPidsAreIndices) {
  Document d;
  d.AddRoot(Intern("a"));
  const NodeId b = d.AddChild(0, Intern("b"));
  EXPECT_EQ(d.pid(b), 1);
  EXPECT_EQ(d.FindByPid(1), b);
  EXPECT_EQ(d.FindByPid(99), kNullNode);
}

TEST(DocumentTest, SubtreePreservesPids) {
  Document d;
  const NodeId r = d.AddRoot(Intern("a"), 10);
  const NodeId b = d.AddChild(r, Intern("b"), 20);
  d.AddChild(b, Intern("c"), 30);
  d.AddChild(r, Intern("x"), 40);
  const Document sub = d.Subtree(b);
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.pid(sub.root()), 20);
  EXPECT_EQ(sub.FindByPid(30), 1);
  EXPECT_EQ(sub.FindByPid(40), kNullNode);
}

TEST(DocumentTest, SubtreeNodesPreorder) {
  Document d;
  const NodeId r = d.AddRoot(Intern("a"));
  const NodeId b = d.AddChild(r, Intern("b"));
  d.AddChild(b, Intern("c"));
  d.AddChild(r, Intern("d"));
  const auto nodes = d.SubtreeNodes(r);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], r);
}

TEST(TreeTextTest, ParseRoundTrip) {
  const auto doc = ParseTreeText("a(b(c, d), e)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 5);
  EXPECT_EQ(ToTreeText(*doc), "a(b(c, d), e)");
}

TEST(TreeTextTest, ParsePids) {
  const auto doc = ParseTreeText("bonus#5(laptop#24(44#25))");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->pid(doc->root()), 5);
  EXPECT_NE(doc->FindByPid(25), kNullNode);
  EXPECT_EQ(ToTreeText(*doc, /*with_pids=*/true), "bonus#5(laptop#24(44#25))");
}

TEST(TreeTextTest, QuotedLabels) {
  const auto doc = ParseTreeText("\"a b\"(\"c,d\")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(LabelName(doc->label(doc->root())), "a b");
  const auto round = ParseTreeText(ToTreeText(*doc));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(Isomorphic(*doc, *round));
}

TEST(TreeTextTest, Errors) {
  EXPECT_FALSE(ParseTreeText("").ok());
  EXPECT_FALSE(ParseTreeText("a(b").ok());
  EXPECT_FALSE(ParseTreeText("a)b").ok());
  EXPECT_FALSE(ParseTreeText("a(b,)").ok());
}

TEST(XmlTest, ParseSimple) {
  const auto doc = ParseXml("<a><b/><c>text</c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 4);  // a, b, c, text.
  EXPECT_EQ(LabelName(doc->label(doc->root())), "a");
}

TEST(XmlTest, RoundTrip) {
  const auto doc = ParseTreeText("a(b(c), d)");
  ASSERT_TRUE(doc.ok());
  const auto round = ParseXml(ToXml(*doc));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(Isomorphic(*doc, *round));
}

TEST(XmlTest, PidsViaAttributes) {
  const auto doc = ParseTreeText("a#7(b#9)");
  ASSERT_TRUE(doc.ok());
  const auto round = ParseXml(ToXml(*doc, /*with_pids=*/true));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(EqualWithPids(*doc, *round));
}

TEST(XmlTest, MismatchedClose) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
}

TEST(CanonicalTest, OrderInvariance) {
  const auto d1 = ParseTreeText("a(b, c(d, e))");
  const auto d2 = ParseTreeText("a(c(e, d), b)");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(Isomorphic(*d1, *d2));
  EXPECT_EQ(CanonicalHash(*d1), CanonicalHash(*d2));
}

TEST(CanonicalTest, DistinguishesStructure) {
  const auto d1 = ParseTreeText("a(b(c))");
  const auto d2 = ParseTreeText("a(b, c)");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(Isomorphic(*d1, *d2));
}

TEST(CanonicalTest, PidSensitivity) {
  const auto d1 = ParseTreeText("a#1(b#2)");
  const auto d2 = ParseTreeText("a#1(b#3)");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(Isomorphic(*d1, *d2));
  EXPECT_FALSE(EqualWithPids(*d1, *d2));
}

TEST(CanonicalTest, SubtreeCanonical) {
  const auto d = ParseTreeText("a(b(x), c(x))");
  ASSERT_TRUE(d.ok());
  const auto kids = d->children(d->root());
  EXPECT_NE(CanonicalString(*d, kids[0]), CanonicalString(*d, kids[1]));
}

}  // namespace
}  // namespace pxv
