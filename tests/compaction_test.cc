// Tombstone compaction suite.
//
// The contract under test (ISSUE 5 acceptance): PDocument::Compact() drops
// every detached node while preserving pids, sibling order, exp
// distributions and per-node subtree version stamps; ids remap densely
// preserving relative order; and a DocumentStore serving a compacted
// document — whether Apply crossed the detached-ratio threshold or a
// caller forced Compact() — keeps query and materialization results
// bit-identical to an uncompacted twin and to a from-scratch rebuild,
// across the flat exact DP, the reference engine, and the naive
// world-enumeration oracle (the latter two to numerical tolerance — they
// sum in different orders by design). Exp nodes and the >32-slot wide-key
// regime are covered, as are the detached-leak regressions (cost model,
// pid occurrence scans) and the rollback-across-the-threshold fault
// injection.

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "prob/engine.h"
#include "prob/eval_session.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/view_extension.h"
#include "rewrite/planner.h"
#include "rewrite/rewriter.h"
#include "serve/document_store.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "util/strings.h"
#include "xml/label.h"

namespace pxv {
namespace {

// ------------------------------------------------------- canonical form ----
// Structure + labels + source pids + exact probabilities; ignores arena
// node ids and extension-local (negative) pids — the representational
// freedoms both delta patching and compaction have.

void AppendProb(double p, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);  // Round-trips doubles.
  *out += buf;
}

void CanonNode(const PDocument& d, NodeId n, std::string* out) {
  if (d.ordinary(n)) {
    *out += "O(";
    *out += LabelName(d.label(n));
    *out += ',';
    *out += d.pid(n) >= 0 ? std::to_string(d.pid(n)) : std::string("L");
    *out += ',';
    AppendProb(d.edge_prob(n), out);
    *out += ')';
  } else {
    *out += PKindName(d.kind(n));
    *out += '(';
    AppendProb(d.edge_prob(n), out);
    if (d.kind(n) == PKind::kExp) {
      for (const auto& [subset, p] : d.exp_distribution(n)) {
        *out += ";{";
        for (int idx : subset) {
          *out += std::to_string(idx);
          *out += ' ';
        }
        *out += "}=";
        AppendProb(p, out);
      }
    }
    *out += ')';
  }
  *out += '[';
  for (NodeId c : d.children(n)) CanonNode(d, c, out);
  *out += ']';
}

std::string Canon(const PDocument& d) {
  std::string out;
  if (!d.empty()) CanonNode(d, d.root(), &out);
  return out;
}

// ------------------------------------------------ document + mutation gen ----
// Stratified labels (depth-i nodes are l{i-1}; see incremental_test.cc):
// no label nests under itself, so view outputs have unique selected
// ancestors — the §4 restricted-plan precondition.

Label StratLabel(int ordinary_depth) {
  return Intern("l" + std::to_string(ordinary_depth - 1));
}

int OrdinaryDepth(const PDocument& pd, NodeId n) {
  int depth = 0;
  for (NodeId a = pd.OrdinaryAncestor(n); a != kNullNode;
       a = pd.OrdinaryAncestor(a)) {
    ++depth;
  }
  return depth;
}

void GrowStrat(PDocument* pd, NodeId parent, int odepth, int* budget,
               Rng& rng) {
  if (*budget <= 0 || odepth > 4) return;
  const int fanout = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < fanout && *budget > 0; ++i) {
    const Label l = StratLabel(odepth);
    if (rng.NextBool(0.35)) {
      const PKind kind = rng.NextBool(0.5) ? PKind::kMux : PKind::kInd;
      const NodeId dist = pd->AddDistributional(parent, kind);
      const int alts = 1 + static_cast<int>(rng.NextBounded(2));
      double remaining = 1.0;
      for (int a = 0; a < alts; ++a) {
        double p = rng.NextDouble();
        if (kind == PKind::kMux) {
          p = std::min(p, remaining);
          remaining -= p;
        }
        const NodeId c = pd->AddOrdinary(dist, l, p);
        --*budget;
        GrowStrat(pd, c, odepth + 1, budget, rng);
      }
    } else {
      const NodeId c = pd->AddOrdinary(parent, l);
      --*budget;
      GrowStrat(pd, c, odepth + 1, budget, rng);
    }
  }
}

PDocument RandomDocWithExp(Rng& rng, int target_nodes, int exp_nodes) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  int budget = target_nodes;
  GrowStrat(&pd, root, 1, &budget, rng);
  while (pd.children(root).empty()) {
    pd.AddOrdinary(root, StratLabel(1));
  }
  std::vector<NodeId> ordinary;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n)) ordinary.push_back(n);
  }
  for (int e = 0; e < exp_nodes; ++e) {
    const NodeId host = ordinary[rng.NextBounded(ordinary.size())];
    const NodeId exp = pd.AddExp(host);
    const int kids = 2 + static_cast<int>(rng.NextBounded(2));
    for (int k = 0; k < kids; ++k) {
      pd.AddOrdinary(exp, StratLabel(OrdinaryDepth(pd, exp)));
    }
    std::vector<std::pair<std::vector<int>, double>> dist;
    double remaining = 1.0;
    const int subsets = 1 + static_cast<int>(rng.NextBounded(3));
    for (int s = 0; s < subsets; ++s) {
      std::vector<int> subset;
      for (int k = 0; k < kids; ++k) {
        if (rng.NextBool(0.5)) subset.push_back(k);
      }
      const double p = std::min(remaining, 0.5 * rng.NextDouble());
      remaining -= p;
      dist.emplace_back(std::move(subset), p);
    }
    pd.SetExpDistribution(exp, std::move(dist));
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

PDocument RandomPayload(Rng& rng, PersistentId* next_pid, int base_odepth) {
  PDocument sub;
  {
    PDocument::MutationBatch batch(&sub);  // Scoped: closed before return.
    const NodeId root = sub.AddRoot(StratLabel(base_odepth), (*next_pid)++);
    const int kids = 1 + static_cast<int>(rng.NextBounded(3));
    for (int k = 0; k < kids; ++k) {
      if (rng.NextBool(0.4)) {
        const NodeId dist = sub.AddDistributional(
            root, rng.NextBool(0.5) ? PKind::kMux : PKind::kInd);
        sub.AddOrdinary(dist, StratLabel(base_odepth + 1),
                        0.9 * rng.NextDouble(), (*next_pid)++);
      } else {
        const NodeId c = sub.AddOrdinary(root, StratLabel(base_odepth + 1),
                                         1.0, (*next_pid)++);
        if (rng.NextBool(0.5)) {
          sub.AddOrdinary(c, StratLabel(base_odepth + 2), 1.0, (*next_pid)++);
        }
      }
    }
  }
  return sub;
}

// Removal-biased random mutation: compaction only earns its keep under
// RemoveSubtree churn, so half the draws try a removal first.
DocMutation ChurnMutation(const PDocument& pd, Rng& rng,
                          PersistentId* next_pid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 5) {  // Remove an ordinary subtree (keep siblings alive).
      std::vector<NodeId> candidates;
      for (NodeId n = 0; n < pd.size(); ++n) {
        if (!pd.ordinary(n) || pd.detached(n) || n == pd.root()) continue;
        const NodeId par = pd.parent(n);
        if (pd.kind(par) == PKind::kExp) continue;
        if (!pd.ordinary(par) && pd.children(par).size() < 2) continue;
        candidates.push_back(n);
      }
      if (candidates.empty()) continue;
      return DocMutation::RemoveSubtree(
          pd.pid(candidates[rng.NextBounded(candidates.size())]));
    }
    if (dice < 8) {  // Insert a small random subtree under an ordinary node.
      std::vector<NodeId> candidates;
      for (NodeId n = 0; n < pd.size(); ++n) {
        if (pd.ordinary(n) && !pd.detached(n)) candidates.push_back(n);
      }
      const NodeId host = candidates[rng.NextBounded(candidates.size())];
      return DocMutation::InsertSubtree(
          pd.pid(host),
          RandomPayload(rng, next_pid, OrdinaryDepth(pd, host) + 1));
    }
    // Edge probability of a mux/ind child.
    std::vector<NodeId> candidates;
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (pd.detached(n) || pd.parent(n) == kNullNode) continue;
      const PKind pk = pd.kind(pd.parent(n));
      if (pd.ordinary(n) && (pk == PKind::kMux || pk == PKind::kInd)) {
        candidates.push_back(n);
      }
    }
    if (candidates.empty()) continue;
    const NodeId n = candidates[rng.NextBounded(candidates.size())];
    double budget = 1.0;
    if (pd.kind(pd.parent(n)) == PKind::kMux) {
      for (NodeId s : pd.children(pd.parent(n))) {
        if (s != n) budget -= pd.edge_prob(s);
      }
    }
    if (budget <= 0) continue;
    return DocMutation::SetEdgeProb(pd.pid(n), budget * rng.NextDouble());
  }
  return DocMutation::InsertSubtree(pd.pid(pd.root()),
                                    RandomPayload(rng, next_pid, 1));
}

// --------------------------------------------------- equivalence harness ----

// Asserts the store's current snapshot is bit-identical to a from-scratch
// materialization over the (possibly compacted) document, answers match
// through the planner, and the anchored probabilities agree with the
// reference engine and — when tractable — the naive oracle.
void ExpectEquivalent(DocumentStore& store, const std::string& name,
                      const std::vector<NamedView>& views,
                      const std::vector<Pattern>& queries) {
  const PDocument* doc = store.Find(name);
  ASSERT_NE(doc, nullptr);
  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions fresh = rewriter.Materialize(*doc);
  const auto snapshot = store.Snapshot(name);
  ASSERT_NE(snapshot, nullptr);

  ASSERT_EQ(snapshot->size(), fresh.size());
  for (const auto& [vname, ext] : fresh) {
    const auto it = snapshot->find(vname);
    ASSERT_NE(it, snapshot->end()) << vname;
    EXPECT_EQ(Canon(*it->second), Canon(ext)) << "extension " << vname;
  }

  for (const Pattern& q : queries) {
    const QueryPlan plan = rewriter.Compile(q);
    const auto a_inc = ExecuteQueryPlan(plan, *snapshot);
    const auto a_fresh = ExecuteQueryPlan(plan, fresh);
    ASSERT_EQ(a_inc.has_value(), a_fresh.has_value());
    if (!a_inc.has_value()) continue;
    ASSERT_EQ(a_inc->size(), a_fresh->size());
    for (size_t i = 0; i < a_inc->size(); ++i) {
      EXPECT_EQ((*a_inc)[i].pid, (*a_fresh)[i].pid);
      EXPECT_EQ((*a_inc)[i].prob, (*a_fresh)[i].prob) << "answer not bitwise";
    }
  }

  for (const NamedView& v : views) {
    const auto it = snapshot->find(v.name);
    ASSERT_NE(it, snapshot->end());
    const PDocument& ext = *it->second;
    std::map<PersistentId, double> by_pid;
    for (NodeId r : ExtensionResultRoots(ext)) {
      by_pid[ext.pid(r)] += ext.edge_prob(r);
    }
    std::map<PersistentId, double> ref_by_pid;
    for (const NodeProb& np :
         ReferenceBatchAnchoredProbabilities(*doc, {&v.def})) {
      if (np.prob > 1e-12) ref_by_pid[doc->pid(np.node)] += np.prob;
    }
    ASSERT_EQ(by_pid.size(), ref_by_pid.size()) << v.name;
    for (const auto& [pid, p] : ref_by_pid) {
      ASSERT_TRUE(by_pid.count(pid)) << v.name << " pid " << pid;
      EXPECT_NEAR(by_pid[pid], p, 1e-9) << v.name << " pid " << pid;
    }
    StatusOr<std::map<NodeId, double>> naive =
        NaiveTryBatchAnchored(*doc, {&v.def}, 1 << 14);
    if (naive.ok()) {
      std::map<PersistentId, double> naive_by_pid;
      for (const auto& [n, p] : *naive) {
        if (p > 1e-12) naive_by_pid[doc->pid(n)] += p;
      }
      ASSERT_EQ(by_pid.size(), naive_by_pid.size()) << v.name;
      for (const auto& [pid, p] : naive_by_pid) {
        EXPECT_NEAR(by_pid[pid], p, 1e-9) << v.name << " pid " << pid;
      }
    }
  }
}

// Bitwise comparison of two stores' answers over the same query set (the
// compacted document against its uncompacted twin).
void ExpectTwinAnswers(DocumentStore& a, DocumentStore& b,
                       const std::string& name,
                       const std::vector<Pattern>& queries) {
  for (const Pattern& q : queries) {
    const auto ra = a.Answer(name, q);
    const auto rb = b.Answer(name, q);
    ASSERT_EQ(ra.has_value(), rb.has_value());
    if (!ra.has_value()) continue;
    ASSERT_EQ(ra->size(), rb->size());
    for (size_t i = 0; i < ra->size(); ++i) {
      EXPECT_EQ((*ra)[i].pid, (*rb)[i].pid);
      EXPECT_EQ((*ra)[i].prob, (*rb)[i].prob) << "twin answers diverge";
    }
  }
}

// --------------------------------------------------------- Compact() unit ----

TEST(CompactUnit, DropsTombstonesPreservingContentAndVersions) {
  const auto parsed = ParsePDocument(
      "a(b#10(c#11, d#12), ind(e#13(f#14)@0.5, g#15@0.25), h#16)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  pd.RemoveSubtree(pd.FindByPid(13));
  pd.RemoveSubtree(pd.FindByPid(12));
  ASSERT_EQ(pd.detached_count(), 3);
  const PDocument before = pd;  // Copy: shares versions node for node.
  const std::string canon_before = Canon(pd);
  const uint64_t uid_before = pd.uid();

  const std::vector<NodeId> remap = pd.Compact();
  EXPECT_EQ(Canon(pd), canon_before);
  EXPECT_EQ(pd.detached_count(), 0);
  EXPECT_EQ(pd.size(), before.size() - 3);
  EXPECT_EQ(pd.live_size(), pd.size());
  EXPECT_NE(pd.uid(), uid_before);              // Caches must re-key.
  EXPECT_GT(pd.uid(), uid_before);              // Monotone counter draw.
  EXPECT_EQ(pd.structure_version(), pd.uid());
  ASSERT_TRUE(pd.Validate().ok());

  // Dense stable-rank remap: live nodes keep relative order and content.
  ASSERT_EQ(static_cast<int>(remap.size()), before.size());
  NodeId expected = 0;
  for (NodeId n = 0; n < before.size(); ++n) {
    if (before.detached(n)) {
      EXPECT_EQ(remap[n], kNullNode);
      continue;
    }
    ASSERT_EQ(remap[n], expected++);
    EXPECT_EQ(pd.kind(remap[n]), before.kind(n));
    EXPECT_EQ(pd.edge_prob(remap[n]), before.edge_prob(n));
    EXPECT_EQ(pd.version(remap[n]), before.version(n));  // Stamps survive.
    if (before.ordinary(n)) {
      EXPECT_EQ(pd.label(remap[n]), before.label(n));
      EXPECT_EQ(pd.pid(remap[n]), before.pid(n));
    }
  }
  EXPECT_EQ(expected, pd.size());

  // A clean document compacts to the identity without a uid draw.
  const uint64_t uid_clean = pd.uid();
  const std::vector<NodeId> identity = pd.Compact();
  EXPECT_EQ(pd.uid(), uid_clean);
  for (NodeId n = 0; n < pd.size(); ++n) EXPECT_EQ(identity[n], n);
}

TEST(CompactUnit, ExpDistributionsAndSiblingOrderSurvive) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("a"), 1);
  const NodeId keep1 = pd.AddOrdinary(root, Intern("k"), 1.0, 2);
  pd.AddOrdinary(root, Intern("x"), 1.0, 3);
  const NodeId keep2 = pd.AddOrdinary(root, Intern("k"), 1.0, 4);
  const NodeId exp = pd.AddExp(keep2);
  pd.AddOrdinary(exp, Intern("e"), 1.0, 5);
  pd.AddOrdinary(exp, Intern("e"), 1.0, 6);
  pd.SetExpDistribution(exp, {{{0}, 0.3}, {{0, 1}, 0.5}});
  pd.AddOrdinary(keep1, Intern("y"), 1.0, 7);
  ASSERT_TRUE(pd.Validate().ok());
  pd.RemoveSubtree(pd.FindByPid(3));
  const std::string canon = Canon(pd);

  pd.Compact();
  EXPECT_EQ(Canon(pd), canon);  // Canon captures order + exp subsets.
  const NodeId new_exp = pd.children(pd.FindByPid(4))[0];
  ASSERT_EQ(pd.kind(new_exp), PKind::kExp);
  const auto& dist = pd.exp_distribution(new_exp);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0].first, (std::vector<int>{0}));
  EXPECT_EQ(dist[1].first, (std::vector<int>{0, 1}));
}

TEST(CompactUnit, PendingDirtyPathsFallBackToLiveAncestors) {
  const auto parsed = ParsePDocument("a(b#10(c#11), d#12)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  pd.ClearDirtyPaths();
  pd.RemoveSubtree(pd.FindByPid(11));  // Dirty entry = the detached root.
  ASSERT_EQ(pd.dirty_paths().size(), 1u);
  pd.Compact();
  ASSERT_EQ(pd.dirty_paths().size(), 1u);
  const NodeId d = pd.dirty_paths()[0];
  ASSERT_GE(d, 0);
  ASSERT_LT(d, pd.size());
  EXPECT_FALSE(pd.detached(d));
  EXPECT_EQ(pd.pid(d), 10);  // c's nearest live ancestor is b.
}

// The subtree memo is NodeId-keyed: after a compaction remap it must be
// dropped (versions are shared along stamped spines, so id/version pairs
// can collide across the remap), and ONLY it — the session itself, its
// scratch and its counters survive, and evaluation stays bit-identical to
// a fresh session.
TEST(CompactUnit, ScopedSubtreeMemoInvalidation) {
  Rng rng(77);
  PDocument pd = RandomDocWithExp(rng, 30, 1);
  const Pattern q = Tp("root//l1");
  EvalOptions options;
  options.cache_subtrees = true;
  EvalSession session(pd, options);
  (void)session.EvaluateTP(q);
  ASSERT_GT(session.subtree_cache_stats().stores, 0u);

  // Churn, re-evaluate incrementally, then compact.
  std::vector<NodeId> removable;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.detached(n) || n == pd.root()) continue;
    const NodeId par = pd.parent(n);
    if (pd.kind(par) == PKind::kExp) continue;
    if (!pd.ordinary(par) && pd.children(par).size() < 2) continue;
    removable.push_back(n);
    if (removable.size() >= 3) break;
  }
  ASSERT_FALSE(removable.empty());
  for (NodeId n : removable) {
    if (!pd.detached(n)) pd.RemoveSubtree(n);
  }
  (void)session.EvaluateTP(q);

  pd.Compact();
  session.InvalidateSubtreeMemo();
  const SubtreeCacheStats after = session.subtree_cache_stats();
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.invalidations, 1u);
  EXPECT_GT(after.stores, 0u);  // Cumulative counters survive the drop.

  const auto& r = session.EvaluateTP(q);
  EvalSession fresh(pd, options);
  const auto& rf = fresh.EvaluateTP(q);
  ASSERT_EQ(r.size(), rf.size());
  for (size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].node, rf[i].node);
    EXPECT_EQ(r[i].prob, rf[i].prob) << "post-compaction eval not bitwise";
  }
}

// ---------------------------------------------------------- churn suites ----

TEST(ChurnEquivalence, RandomizedWithForcedAndThresholdCompaction) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(73000 + seed);
    PDocument pd = RandomDocWithExp(rng, 24, 2);

    std::vector<NamedView> views;
    views.push_back({"v0", Tp("root//l0")});
    views.push_back({"v1", Tp("root//l1")});
    std::vector<Pattern> queries;
    for (const NamedView& v : views) queries.push_back(v.def.Clone());
    queries.push_back(Tp("root//l0/l1"));

    // Twin stores over the same document: `compacted` compacts (both via
    // the Apply threshold and forced), `plain` never does.
    ViewServer server_c, server_p;
    for (const NamedView& v : views) {
      server_c.AddView(v.name, v.def.Clone());
      server_p.AddView(v.name, v.def.Clone());
    }
    DocumentStore compacted(&server_c);
    DocumentStoreOptions no_compact;
    no_compact.compact_documents = false;
    DocumentStore plain(&server_p, no_compact);
    ASSERT_TRUE(compacted.Put("doc", pd).ok());
    ASSERT_TRUE(plain.Put("doc", std::move(pd)).ok());

    PersistentId next_pid = 2000000 + seed * 10000;
    for (int round = 0; round < 8; ++round) {
      // Mutations are pid-addressed, so one batch drives both twins; draw
      // it from the uncompacted side (same live content either way).
      const PDocument* doc = plain.Find("doc");
      std::vector<DocMutation> batch;
      const int k = 1 + static_cast<int>(rng.NextBounded(3));
      for (int m = 0; m < k; ++m) {
        batch.push_back(ChurnMutation(*doc, rng, &next_pid));
      }
      const auto rc = compacted.Apply("doc", batch);
      const auto rp = plain.Apply("doc", batch);
      ASSERT_EQ(rc.ok(), rp.ok())
          << (rc.ok() ? rp.status().message() : rc.status().message());
      if (!rc.ok()) continue;
      if (round % 3 == 2) {
        // Forced compaction below the threshold exercises the remap of
        // not-yet-rematerialized bookkeeping.
        ASSERT_TRUE(compacted.Compact("doc").ok());
        EXPECT_EQ(compacted.Find("doc")->detached_count(), 0);
      }
      ASSERT_TRUE(compacted.MaterializeIncremental("doc").ok());
      ASSERT_TRUE(plain.MaterializeIncremental("doc").ok());

      // Snapshots bit-identical across the twins (Canon ignores ids)…
      const auto snap_c = compacted.Snapshot("doc");
      const auto snap_p = plain.Snapshot("doc");
      ASSERT_EQ(snap_c->size(), snap_p->size());
      for (const auto& [vname, ext] : *snap_c) {
        EXPECT_EQ(Canon(*ext), Canon(*snap_p->at(vname)))
            << "twin extensions diverge: " << vname;
      }
      // …answers bitwise equal, and the compacted side equivalent to a
      // from-scratch rebuild + reference engine + naive oracle.
      ExpectTwinAnswers(compacted, plain, "doc", queries);
      ExpectEquivalent(compacted, "doc", views, queries);
    }
    // The suite must actually have compacted and still served memo hits.
    EXPECT_GT(compacted.stats().compactions, 0);
    EXPECT_GT(compacted.stats().nodes_reclaimed, 0);
    EXPECT_GT(compacted.SessionCacheStats("doc").hits, 0u);
    EXPECT_EQ(plain.stats().compactions, 0);
  }
}

// The >32-live-slot wide-key regime: removals + re-inserts + forced
// compaction under a 39-slot view that forces the 256-bit root frame.
TEST(ChurnEquivalence, WideKeyRegimeSurvivesCompaction) {
  PDocument pd;
  const NodeId r = pd.AddRoot(Intern("r"));
  const NodeId ind = pd.AddDistributional(r, PKind::kInd);
  for (int copy = 0; copy < 2; ++copy) {
    const NodeId b = pd.AddOrdinary(ind, Intern("b"), 0.5 + 0.25 * copy);
    const NodeId mux = pd.AddDistributional(b, PKind::kMux);
    const NodeId grp1 = pd.AddOrdinary(mux, Intern("g"), 0.6);
    const NodeId grp2 = pd.AddOrdinary(mux, Intern("g"), 0.4);
    for (int i = 0; i < 36; ++i) {
      pd.AddOrdinary(i % 2 ? grp1 : grp2, Intern("p" + std::to_string(i)));
    }
  }
  ASSERT_TRUE(pd.Validate().ok());

  Pattern q;
  const PNodeId qr = q.AddRoot(Intern("r"));
  const PNodeId qb = q.AddChild(qr, Intern("b"), Axis::kDescendant);
  const PNodeId qg = q.AddChild(qb, Intern("g"), Axis::kChild);
  for (int i = 0; i < 36; ++i) {
    q.AddChild(qg, Intern("p" + std::to_string(i)), Axis::kDescendant);
  }
  q.SetOut(qb);
  ASSERT_GT(BatchSlotCount({&q}), kNarrowSlotCap);

  std::vector<NamedView> views;
  views.push_back({"wide", q.Clone()});
  ViewServer server;
  server.AddView("wide", q.Clone());
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("doc", pd).ok());
  ExpectEquivalent(store, "doc", views, {});

  // Remove a few p-leaves, re-insert same-labeled leaves with fresh pids,
  // force a compaction, and re-check equivalence each round.
  PersistentId next_pid = 5000000;
  Rng rng(4242);
  for (int round = 0; round < 3; ++round) {
    const PDocument* doc = store.Find("doc");
    std::vector<DocMutation> batch;
    int found = 0;
    for (NodeId n = 0; n < doc->size() && found < 2; ++n) {
      if (!doc->ordinary(n) || doc->detached(n)) continue;
      const Label l = doc->label(n);
      if (LabelName(l).rfind("p", 0) != 0) continue;
      if (rng.NextBool(0.8)) continue;
      const NodeId host = doc->OrdinaryAncestor(n);  // The g group node.
      PDocument leaf;
      leaf.AddRoot(l, next_pid++);
      batch.push_back(DocMutation::RemoveSubtree(doc->pid(n)));
      batch.push_back(DocMutation::InsertSubtree(doc->pid(host),
                                                 std::move(leaf)));
      ++found;
    }
    ASSERT_GT(found, 0);
    ASSERT_TRUE(store.Apply("doc", batch).ok());
    ASSERT_TRUE(store.Compact("doc").ok());
    EXPECT_EQ(store.Find("doc")->detached_count(), 0);
    ASSERT_TRUE(store.MaterializeIncremental("doc").ok());
    ExpectEquivalent(store, "doc", views, {});
  }
}

// ----------------------------------------------- rollback fault injection ----

// A failed multi-mutation batch that WOULD have crossed the compaction
// threshold must restore the pre-batch snapshot exactly: same canonical
// content, same uid, same arena size, same tombstones — and no compaction.
TEST(ApplyRollback, FailedBatchAcrossThresholdRestoresExactly) {
  Rng rng(909);
  PDocument pd = PersonnelPDocument(rng, 10, 0.3, 0.4);
  std::vector<PersistentId> persons;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == Intern("person")) {
      persons.push_back(pd.pid(n));
    }
  }
  ASSERT_EQ(persons.size(), 10u);

  ViewServer server;
  server.AddView("vbonus", Tp("IT-personnel//person/bonus"));
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("doc", std::move(pd)).ok());
  const PDocument* doc = store.Find("doc");
  const std::string canon_before = Canon(*doc);
  const uint64_t uid_before = doc->uid();
  const int size_before = doc->size();
  const int detached_before = doc->detached_count();

  // 8 of 10 person subtrees removed — far past detached > live — then a
  // mutation that must fail.
  std::vector<DocMutation> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(DocMutation::RemoveSubtree(persons[i]));
  }
  batch.push_back(DocMutation::RemoveSubtree(999999999));  // No such pid.
  const auto failed = store.Apply("doc", batch);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(Canon(*doc), canon_before);
  EXPECT_EQ(doc->uid(), uid_before);
  EXPECT_EQ(doc->size(), size_before);
  EXPECT_EQ(doc->detached_count(), detached_before);
  EXPECT_EQ(store.stats().compactions, 0);
  EXPECT_EQ(store.stats().rejected_batches, 1);

  // The same batch without the poison pill commits and crosses the
  // threshold: Apply compacts, and serving stays equivalent to a rebuild.
  batch.pop_back();
  const auto applied = store.Apply("doc", batch);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(store.stats().compactions, 1);
  EXPECT_EQ(doc->detached_count(), 0);
  EXPECT_LT(doc->size(), size_before);
  EXPECT_GT(store.stats().nodes_reclaimed, 0);
  ASSERT_TRUE(store.MaterializeIncremental("doc").ok());
  std::vector<NamedView> views;
  views.push_back({"vbonus", Tp("IT-personnel//person/bonus")});
  std::vector<Pattern> queries;
  queries.push_back(Tp("IT-personnel//person/bonus"));
  ExpectEquivalent(store, "doc", views, queries);
}

// ------------------------------------------------ detached-leak regression ----

// Raw size()/full-arena consumers on a churned document/extension must not
// observe tombstones: the planner cost model charges live nodes only, and
// Validate / OrdinaryCount / FindByPid / LabelIndex / ExtensionResultRoots
// / plan execution all behave as on a freshly rebuilt arena.
TEST(DetachedLeakRegression, ChurnedConsumersSeeLiveNodesOnly) {
  const auto parsed = ParsePDocument(
      "a(b#10(c#11), b#12(c#13), b#14(c#15), b#16(c#17))");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const Pattern vdef = Tp("a/b");

  // Materialize, then churn the document and delta-patch the extension so
  // it accumulates tombstones.
  std::vector<ViewResultEntry> results;
  for (const NodeProb& np : EvaluateTP(pd, vdef)) {
    results.push_back({np.node, np.prob});
  }
  MaterializedView mv = BuildMaterializedView(pd, "v", results);
  ASSERT_EQ(mv.ext.detached_count(), 0);
  pd.RemoveSubtree(pd.FindByPid(12));
  pd.RemoveSubtree(pd.FindByPid(14));
  std::vector<ViewResultEntry> new_results;
  for (const NodeProb& np : EvaluateTP(pd, vdef)) {
    new_results.push_back({np.node, np.prob});
  }
  BuildViewExtensionDelta(pd, new_results, &mv);
  ASSERT_GT(mv.ext.detached_count(), 0);  // The churn left tombstones.

  // The document-side consumers.
  EXPECT_TRUE(pd.Validate().ok());
  EXPECT_EQ(pd.live_size(), pd.size() - pd.detached_count());
  EXPECT_EQ(pd.OrdinaryCount(), 5);  // a, b#10, c#11, b#16, c#17.
  EXPECT_EQ(pd.FindByPid(12), kNullNode);
  EXPECT_EQ(pd.FindByPid(13), kNullNode);
  const LabelIndex index(pd);
  EXPECT_EQ(index.Nodes(Intern("b")).size(), 2u);

  // The extension-side consumers.
  EXPECT_TRUE(mv.ext.Validate().ok());
  EXPECT_EQ(ExtensionResultRoots(mv.ext).size(), new_results.size());

  // Cost model: a tombstone-laden patched extension and a fresh rebuild
  // must be priced identically — size() would overprice the patched one.
  const PDocument fresh_ext = BuildViewExtension(pd, "v", new_results);
  ASSERT_GT(mv.ext.size(), fresh_ext.size());
  EXPECT_EQ(mv.ext.live_size(), fresh_ext.live_size());
  std::vector<NamedView> views;
  views.push_back({"v", vdef.Clone()});
  const QueryPlan plan = CompileQuery(Tp("a/b"), views, CompileOptions{});
  ASSERT_FALSE(plan.candidates.empty());
  ViewExtensions churned_set, fresh_set;
  churned_set["v"] = mv.ext;  // Copy, tombstones included.
  fresh_set["v"] = fresh_ext;
  for (const AnswerPlan& cand : plan.candidates) {
    const auto cost_churned = EstimateCost(cand, churned_set);
    const auto cost_fresh = EstimateCost(cand, fresh_set);
    ASSERT_EQ(cost_churned.has_value(), cost_fresh.has_value());
    if (cost_churned.has_value()) {
      EXPECT_EQ(*cost_churned, *cost_fresh)
          << "cost model observed tombstones";
    }
  }

  // Execution over the churned extension matches the fresh rebuild.
  const auto a_churned = ExecuteQueryPlan(plan, churned_set);
  const auto a_fresh = ExecuteQueryPlan(plan, fresh_set);
  ASSERT_EQ(a_churned.has_value(), a_fresh.has_value());
  ASSERT_TRUE(a_churned.has_value());
  ASSERT_EQ(a_churned->size(), a_fresh->size());
  for (size_t i = 0; i < a_churned->size(); ++i) {
    EXPECT_EQ((*a_churned)[i].pid, (*a_fresh)[i].pid);
    EXPECT_EQ((*a_churned)[i].prob, (*a_fresh)[i].prob);
  }
}

// ------------------------------------------- exp-weighted threshold ----

// The compaction threshold charges each tombstone extra in proportion to
// the document's relative exp surcharge (ExpDpCost / live_size): an
// exp-heavy document crosses it earlier than an exp-free twin of the same
// shape. The two documents below differ only in the distributional node's
// kind (exp with 5 explicit subsets vs plain ind), and the exact trigger
// points — the 5th vs the 9th single-node removal — pin the boundary
// arithmetic on both sides.
TEST(ThresholdCompaction, ExpHeavyDocumentsCompactEarlier) {
  const auto build = [](bool exp_heavy) {
    PDocument pd;
    const NodeId root = pd.AddRoot(Intern("a"), 1);
    if (exp_heavy) {
      const NodeId exp = pd.AddExp(root);
      for (int i = 0; i < 3; ++i) {
        pd.AddOrdinary(exp, Intern("b"), 1.0, 100 + i);
      }
      pd.SetExpDistribution(exp, {{{0}, 0.1},
                                  {{1}, 0.1},
                                  {{2}, 0.1},
                                  {{0, 1}, 0.1},
                                  {{1, 2}, 0.1}});
    } else {
      const NodeId ind = pd.AddDistributional(root, PKind::kInd);
      for (int i = 0; i < 3; ++i) {
        pd.AddOrdinary(ind, Intern("b"), 0.5, 100 + i);
      }
    }
    for (int i = 0; i < 12; ++i) {
      pd.AddOrdinary(root, Intern("r"), 1.0, 200 + i);
    }
    pd.ClearDirtyPaths();
    return pd;
  };
  const auto trigger_point = [&](bool exp_heavy) {
    ViewServer server;
    server.AddView("v", Tp("a/b"));
    DocumentStore store(&server);
    PXV_CHECK(store.Put("doc", build(exp_heavy)).ok());
    for (int i = 0; i < 12; ++i) {
      PXV_CHECK(
          store.Apply("doc", {DocMutation::RemoveSubtree(200 + i)}).ok());
      if (store.stats().compactions > 0) return i + 1;  // Removals so far.
    }
    return -1;
  };
  // size 17; exp subtree = 4 live nodes × 5 subsets ⇒ ExpDpCost 20, so the
  // rule d · (2 + 20/(17−d)) > 17 first holds at d = 5 — while the flat
  // d · 2 > 17 (exp-free) needs d = 9.
  EXPECT_EQ(trigger_point(true), 5);
  EXPECT_EQ(trigger_point(false), 9);
}

}  // namespace
}  // namespace pxv
