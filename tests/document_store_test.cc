// DocumentStore semantics: transactional mutation batches, label-overlap
// dirty-view tracking, per-document snapshot isolation and atomic swap,
// and end-to-end answering through the ViewServer plan cache.

#include "serve/document_store.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "pxml/parser.h"
#include "rewrite/rewriter.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

PDocument PersonnelDoc(int persons = 30) {
  Rng rng(411);
  return PersonnelPDocument(rng, persons, 0.3, 0.4);
}

void RegisterPersonnelViews(ViewServer* server) {
  server->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

// The pid of some "Rick" name alternative (an ordinary mux child whose
// edge probability is free to move below its sibling budget).
PersistentId SomeRickPid(const PDocument& pd) {
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && !pd.detached(n) && pd.label(n) == Intern("Rick")) {
      return pd.pid(n);
    }
  }
  ADD_FAILURE() << "no Rick alternative found";
  return kNullPid;
}

TEST(DocumentStoreTest, PutAnswerMatchesDirectMaterialization) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  const PDocument pd = PersonnelDoc();
  ASSERT_TRUE(store.Put("docs", pd).ok());

  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus");
  const auto from_store = store.Answer("docs", q);
  server.Materialize(pd);
  const auto from_server = server.Answer(q);
  ASSERT_EQ(from_store.has_value(), from_server.has_value());
  ASSERT_TRUE(from_store.has_value());
  ASSERT_EQ(from_store->size(), from_server->size());
  for (size_t i = 0; i < from_store->size(); ++i) {
    EXPECT_EQ((*from_store)[i].pid, (*from_server)[i].pid);
    EXPECT_DOUBLE_EQ((*from_store)[i].prob, (*from_server)[i].prob);
  }
}

TEST(DocumentStoreTest, UnknownNamesFailGracefully) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  EXPECT_FALSE(store.Answer("nope", Tp("IT-personnel//person/bonus"))
                   .has_value());
  EXPECT_FALSE(store.MaterializeIncremental("nope").ok());
  EXPECT_FALSE(store.Drop("nope").ok());
  EXPECT_FALSE(
      store.Apply("nope", {DocMutation::SetEdgeProb(1, 0.5)}).ok());
  EXPECT_TRUE(store.Names().empty());
  EXPECT_EQ(store.Snapshot("nope"), nullptr);
}

TEST(DocumentStoreTest, TransactionalBatchRollsBackAsAWhole) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("docs", PersonnelDoc()).ok());
  const PDocument* doc = store.Find("docs");
  ASSERT_NE(doc, nullptr);
  const std::string before = doc->DebugString();
  const uint64_t uid_before = doc->uid();

  const PersistentId rick = SomeRickPid(*doc);
  // First mutation is valid, second targets a nonexistent pid: the whole
  // batch must roll back, first mutation included.
  const auto status = store.Apply(
      "docs", {DocMutation::SetEdgeProb(rick, 0.0),
               DocMutation::RemoveSubtree(999999)});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(doc->DebugString(), before);
  EXPECT_EQ(doc->uid(), uid_before);
  EXPECT_EQ(store.stats().rejected_batches, 1);
  EXPECT_EQ(store.stats().batches, 0);
  // The store still serves and still accepts a valid batch afterwards.
  EXPECT_TRUE(store.Apply("docs", {DocMutation::SetEdgeProb(rick, 0.0)}).ok());
  EXPECT_NE(doc->uid(), uid_before);
}

TEST(DocumentStoreTest, InvalidResultingDocumentRollsBack) {
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  DocumentStore store(&server);
  const auto pd = ParsePDocument("a(mux(b(c)@0.6, b(d)@0.3))");
  ASSERT_TRUE(pd.ok());
  ASSERT_TRUE(store.Put("d", *pd).ok());
  const PDocument* doc = store.Find("d");
  const std::string before = doc->DebugString();
  // Raising one mux branch to 0.9 makes the mux sum 0.6 + 0.9 > 1: the
  // post-batch Validate must reject and restore.
  const NodeId b2 = doc->FindByPid(4);
  ASSERT_NE(b2, kNullNode);
  const auto status = store.Apply(
      "d", {DocMutation::SetEdgeProb(doc->pid(b2), 0.9)});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(doc->DebugString(), before);
}

TEST(DocumentStoreTest, InsertPayloadMustCarryFreshPids) {
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("d", *ParsePDocument("a(b(c))")).ok());
  const PDocument* doc = store.Find("d");
  const std::string before = doc->DebugString();

  // Default parser pids (0,1,...) collide with the host document's own —
  // persistent ids must stay unique, so the batch is rejected.
  EXPECT_FALSE(
      store.Apply("d", {DocMutation::InsertSubtree(0, *ParsePDocument("b(c)"))})
          .ok());
  EXPECT_EQ(doc->DebugString(), before);
  // Payload-internal duplicates are rejected too.
  EXPECT_FALSE(store
                   .Apply("d", {DocMutation::InsertSubtree(
                                   0, *ParsePDocument("b#7(c#7)"))})
                   .ok());
  // Fresh explicit pids pass.
  EXPECT_TRUE(store
                  .Apply("d", {DocMutation::InsertSubtree(
                                  0, *ParsePDocument("b#10(c#11)"))})
                  .ok());
  ASSERT_TRUE(store.MaterializeIncremental("d").ok());
  const auto answer = store.Answer("d", Tp("a/b"));
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->size(), 2u);  // Both b results, distinct pids.
}

TEST(DocumentStoreTest, LabelOverlapDirtyTracking) {
  ViewServer server;
  server.AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server.AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("docs", PersonnelDoc()).ok());
  EXPECT_TRUE(store.DirtyViews("docs").empty());

  // Mutating a Rick alternative's probability touches label {Rick} — only
  // vrick reads it; vbonus must stay clean.
  const PDocument* doc = store.Find("docs");
  ASSERT_TRUE(
      store.Apply("docs", {DocMutation::SetEdgeProb(SomeRickPid(*doc), 0.05)})
          .ok());
  const auto dirty = store.DirtyViews("docs");
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], "vrick");

  // Clean views are republished by pointer, not copied.
  const auto snap_before = store.Snapshot("docs");
  ASSERT_TRUE(store.MaterializeIncremental("docs").ok());
  const auto snap_after = store.Snapshot("docs");
  EXPECT_NE(snap_before, snap_after);
  EXPECT_EQ(snap_before->at("vbonus").get(), snap_after->at("vbonus").get());
  EXPECT_NE(snap_before->at("vrick").get(), snap_after->at("vrick").get());
  EXPECT_TRUE(store.DirtyViews("docs").empty());
  EXPECT_EQ(store.stats().views_clean, 1);
  EXPECT_EQ(store.stats().views_patched, 1);
}

TEST(DocumentStoreTest, SnapshotIsolationAcrossMaterializations) {
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  DocumentStore store(&server);
  const auto pd = ParsePDocument("a(ind(b(c)@0.5))");
  ASSERT_TRUE(pd.ok());
  ASSERT_TRUE(store.Put("d", *pd).ok());

  const auto snap1 = store.Snapshot("d");
  const PDocument& ext1 = *snap1->at("v");
  const auto roots1 = ExtensionResultRoots(ext1);
  ASSERT_EQ(roots1.size(), 1u);
  EXPECT_DOUBLE_EQ(ext1.edge_prob(roots1[0]), 0.5);

  // Mutate + re-materialize: the old snapshot keeps serving 0.5 forever.
  const PDocument* doc = store.Find("d");
  const PersistentId b_pid = [&] {
    for (NodeId n = 0; n < doc->size(); ++n) {
      if (doc->ordinary(n) && doc->label(n) == Intern("b")) {
        return doc->pid(n);
      }
    }
    return kNullPid;
  }();
  ASSERT_TRUE(
      store.Apply("d", {DocMutation::SetEdgeProb(b_pid, 0.25)}).ok());
  // Until MaterializeIncremental, the published snapshot is unchanged.
  EXPECT_EQ(store.Snapshot("d"), snap1);
  ASSERT_TRUE(store.MaterializeIncremental("d").ok());
  const auto snap2 = store.Snapshot("d");
  EXPECT_DOUBLE_EQ(ext1.edge_prob(roots1[0]), 0.5);  // Old snapshot intact.
  const PDocument& ext2 = *snap2->at("v");
  const auto roots2 = ExtensionResultRoots(ext2);
  ASSERT_EQ(roots2.size(), 1u);
  EXPECT_DOUBLE_EQ(ext2.edge_prob(roots2[0]), 0.25);
}

TEST(DocumentStoreTest, MultipleDocumentsAreIndependent) {
  ViewServer server;
  server.AddView("v", Tp("a/b"));
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("one", *ParsePDocument("a(ind(b@0.5))")).ok());
  ASSERT_TRUE(store.Put("two", *ParsePDocument("a(ind(b@0.75))")).ok());
  EXPECT_EQ(store.Names().size(), 2u);

  const Pattern q = Tp("a/b");
  const auto a1 = store.Answer("one", q);
  const auto a2 = store.Answer("two", q);
  ASSERT_TRUE(a1.has_value() && a2.has_value());
  ASSERT_EQ(a1->size(), 1u);
  ASSERT_EQ(a2->size(), 1u);
  EXPECT_DOUBLE_EQ((*a1)[0].prob, 0.5);
  EXPECT_DOUBLE_EQ((*a2)[0].prob, 0.75);

  EXPECT_TRUE(store.Drop("one").ok());
  EXPECT_FALSE(store.Answer("one", q).has_value());
  EXPECT_TRUE(store.Answer("two", q).has_value());
}

TEST(DocumentStoreTest, AnswerAllServesOneSnapshot) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("docs", PersonnelDoc(20)).ok());
  const std::vector<Pattern> queries = {
      Tp("IT-personnel//person/bonus"),
      Tp("IT-personnel//person[name/Rick]/bonus"),
  };
  const auto all = store.AnswerAll("docs", queries);
  ASSERT_EQ(all.size(), 2u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto one = store.Answer("docs", queries[i]);
    ASSERT_EQ(all[i].has_value(), one.has_value());
    if (one.has_value()) EXPECT_EQ(all[i]->size(), one->size());
  }
}

// Concurrent serving while the writer churns across compaction thresholds:
// readers must only ever observe published snapshots (never a mid-compaction
// arena), and every answered probability must belong to one of the two
// document states each person toggles through. Runs under TSan in CI.
TEST(DocumentStoreTest, ReadersSurviveConcurrentCompaction) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("docs", PersonnelDoc(8)).ok());
  const PDocument* doc = store.Find("docs");
  std::vector<PersistentId> persons;
  for (NodeId n = 0; n < doc->size(); ++n) {
    if (doc->ordinary(n) && doc->label(n) == Intern("person")) {
      persons.push_back(doc->pid(n));
    }
  }
  ASSERT_GE(persons.size(), 4u);

  std::atomic<int> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      const Pattern q = Tp("IT-personnel//person/bonus");
      // Fixed iteration count (not a stop flag): the readers must overlap
      // the writer's compaction rounds even when either side is fast.
      for (int i = 0; i < 400; ++i) {
        const auto a = store.Answer("docs", q);
        if (a.has_value()) answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Writer: remove most persons (crossing detached > live, so Apply
  // compacts), re-insert fresh ones, re-materialize; repeat.
  PersistentId next_pid = 9000000;
  for (int round = 0; round < 6; ++round) {
    std::vector<DocMutation> removals;
    std::vector<PersistentId> keep;
    for (size_t i = 0; i < persons.size(); ++i) {
      if (i + 2 < persons.size()) {
        removals.push_back(DocMutation::RemoveSubtree(persons[i]));
      } else {
        keep.push_back(persons[i]);
      }
    }
    ASSERT_TRUE(store.Apply("docs", removals).ok());
    persons = std::move(keep);
    for (int i = 0; i < 6; ++i) {
      PDocument person;
      {
        PDocument::MutationBatch batch(&person);
        const NodeId p = person.AddRoot(Intern("person"), next_pid++);
        const NodeId bonus =
            person.AddOrdinary(p, Intern("bonus"), 1.0, next_pid++);
        const NodeId ind = person.AddDistributional(bonus, PKind::kInd);
        person.AddOrdinary(ind, Intern("laptop"), 0.5, next_pid++);
      }
      persons.push_back(person.pid(person.root()));
      ASSERT_TRUE(store
                      .Apply("docs", {DocMutation::InsertSubtree(
                                         doc->pid(doc->root()),
                                         std::move(person))})
                      .ok());
    }
    ASSERT_TRUE(store.MaterializeIncremental("docs").ok());
  }
  for (auto& r : readers) r.join();
  EXPECT_GT(answered.load(), 0);
  EXPECT_GT(store.stats().compactions, 0);
  EXPECT_EQ(store.Find("docs")->detached_count(), 0);
}

TEST(DocumentStoreTest, IncrementalSessionUsesSubtreeCache) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  DocumentStore store(&server);
  ASSERT_TRUE(store.Put("docs", PersonnelDoc()).ok());
  const auto cold = store.SessionCacheStats("docs");
  EXPECT_GT(cold.stores, 0u);  // First materialization populated the memo.

  const PDocument* doc = store.Find("docs");
  ASSERT_TRUE(
      store.Apply("docs", {DocMutation::SetEdgeProb(SomeRickPid(*doc), 0.01)})
          .ok());
  ASSERT_TRUE(store.MaterializeIncremental("docs").ok());
  const auto warm = store.SessionCacheStats("docs");
  EXPECT_GT(warm.hits, cold.hits);  // Delta run served subtrees from memo.
  // The delta recomputed far fewer regions than the cold run stored.
  EXPECT_LT(warm.stores - cold.stores, cold.stores / 4);
}

// --------------------------------------------------- standing queries ----

TEST(DocumentStoreTest, StandingQueriesRefreshOnApply) {
  ViewServer server;
  RegisterPersonnelViews(&server);
  server.RegisterCachedQuery(Tp("IT-personnel//person/bonus"));
  server.RegisterCachedQuery(Tp("IT-personnel//person[name/Rick]/bonus"));
  server.RegisterCachedQuery(Tp("IT-personnel//person/bonus"));  // Dup: once.
  ASSERT_EQ(server.cached_queries().size(), 2u);
  DocumentStore store(&server);
  EXPECT_FALSE(store.AnswerAllCached("nope").has_value());
  ASSERT_TRUE(store.Put("docs", PersonnelDoc(12)).ok());

  // Every standing answer must match a fresh exact-DP evaluation to the
  // bit, pid-keyed — the shared circuit serving them is never allowed to
  // drift.
  const auto check = [&](const char* when) {
    const auto answers = store.AnswerAllCached("docs");
    ASSERT_TRUE(answers.has_value()) << when;
    ASSERT_EQ(answers->size(), server.cached_queries().size()) << when;
    const PDocument* doc = store.Find("docs");
    EvalSession exact(*doc, {});
    for (size_t i = 0; i < answers->size(); ++i) {
      const auto want = exact.EvaluateTP(server.cached_queries()[i]);
      ASSERT_EQ((*answers)[i].size(), want.size()) << when << " query " << i;
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ((*answers)[i][j].pid, doc->pid(want[j].node))
            << when << " query " << i;
        EXPECT_EQ((*answers)[i][j].prob, want[j].prob)
            << when << " query " << i;
      }
    }
  };
  check("cold");
  EXPECT_EQ(store.stats().cached_refreshes, 1);

  // Apply refreshes the standing answers inline (one merged propagation on
  // the document's standing session); the next read is a pure cache hit.
  const PDocument* doc = store.Find("docs");
  ASSERT_TRUE(
      store.Apply("docs", {DocMutation::SetEdgeProb(SomeRickPid(*doc), 0.02)})
          .ok());
  EXPECT_EQ(store.stats().cached_refreshes, 2);
  check("after prob apply");
  EXPECT_EQ(store.stats().cached_refreshes, 2);  // Served from cache.

  // Structural mutations ride the circuit's recompile fallback and still
  // land bit-identical.
  const PersistentId person = [&] {
    for (NodeId n = 0; n < doc->size(); ++n) {
      if (doc->ordinary(n) && !doc->detached(n) &&
          doc->label(n) == Intern("person")) {
        return doc->pid(n);
      }
    }
    return kNullPid;
  }();
  ASSERT_NE(person, kNullPid);
  ASSERT_TRUE(
      store.Apply("docs", {DocMutation::RemoveSubtree(person)}).ok());
  check("after structural apply");
  EXPECT_EQ(store.stats().cached_refreshes, 3);
  EXPECT_GE(server.stats().cached_batches, 3);
  EXPECT_EQ(server.stats().cached_queries, 2);
}

// ----------------------------------------------------- durable stores ----
// TSan-facing coverage: checkpointing and recovery share process-global
// state with serving stores (the label interner, the version-stamp
// counter) and per-store state with readers (snapshots, the WAL mutex).

std::string DurableTestDir(const std::string& name) {
  const std::string dir =
      testing::TempDir() + "/pxv_docstore_durable_" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

DocumentStoreOptions Durable(const std::string& dir) {
  DocumentStoreOptions options;
  options.durable_dir = dir;
  options.fsync = FsyncPolicy::kBatch;
  options.sync_every_records = 4;
  options.checkpoint_after_wal_bytes = 0;
  return options;
}

// Mux name alternatives: edge probabilities that are free to move
// anywhere below their initial value (the mux budget only gains slack).
std::vector<std::pair<PersistentId, double>> MuxAlternatives(
    const PDocument& doc) {
  std::vector<std::pair<PersistentId, double>> out;
  for (NodeId n = 0; n < doc.size(); ++n) {
    if (!doc.ordinary(n) || doc.detached(n)) continue;
    const NodeId parent = doc.parent(n);
    if (parent != kNullNode && !doc.ordinary(parent) &&
        doc.kind(parent) == PKind::kMux) {
      out.push_back({doc.pid(n), doc.edge_prob(n)});
    }
  }
  return out;
}

TEST(DocumentStoreTest, ReadersKeepAnsweringDuringCheckpoints) {
  const std::string dir = DurableTestDir("ckpt_readers");
  ViewServer server;
  RegisterPersonnelViews(&server);
  auto store = DocumentStore::Open(&server, Durable(dir));
  ASSERT_TRUE(store.ok()) << store.status().message();
  ASSERT_TRUE((*store)->Put("docs", PersonnelDoc(8)).ok());
  const auto alternatives = MuxAlternatives(*(*store)->Find("docs"));
  ASSERT_GE(alternatives.size(), 4u);

  std::atomic<int> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      const Pattern q = Tp("IT-personnel//person/bonus");
      for (int i = 0; i < 300; ++i) {
        if ((*store)->Answer("docs", q).has_value()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // A dedicated checkpointer overlapping the writer: Checkpoint() must
  // rotate the WAL and serialize documents while Apply commits and
  // readers resolve snapshots. The CAS guard turns self-overlap into a
  // no-op; overlap with Apply is the interesting interleaving.
  std::atomic<bool> stop{false};
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE((*store)->Checkpoint().ok());
    }
  });
  Rng rng(97);
  for (int i = 0; i < 120; ++i) {
    const auto& [pid, initial] =
        alternatives[rng.NextBounded(alternatives.size())];
    ASSERT_TRUE((*store)
                    ->Apply("docs", {DocMutation::SetEdgeProb(
                                        pid, initial * rng.NextDouble())})
                    .ok());
    if (i % 10 == 0) {
      ASSERT_TRUE((*store)->MaterializeIncremental("docs").ok());
    }
  }
  stop.store(true, std::memory_order_release);
  checkpointer.join();
  for (auto& r : readers) r.join();
  EXPECT_GT(answered.load(), 0);
  EXPECT_GE((*store)->stats().checkpoints, 1);

  // Checkpoints taken mid-stream still recover to exactly the live state.
  ASSERT_TRUE((*store)->MaterializeIncremental("docs").ok());
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus");
  const auto live = (*store)->Answer("docs", q);
  store->reset();
  ViewServer server2;
  RegisterPersonnelViews(&server2);
  auto reopened = DocumentStore::Open(&server2, Durable(dir));
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  const auto recovered = (*reopened)->Answer("docs", q);
  ASSERT_EQ(live.has_value(), recovered.has_value());
  if (live.has_value()) {
    ASSERT_EQ(live->size(), recovered->size());
    for (size_t i = 0; i < live->size(); ++i) {
      EXPECT_EQ((*live)[i].pid, (*recovered)[i].pid);
      EXPECT_EQ((*live)[i].prob, (*recovered)[i].prob);
    }
  }
}

TEST(DocumentStoreTest, RecoveryRunsConcurrentlyWithAServingStore) {
  // Prepare a durable directory, cleanly closed.
  const std::string dir = DurableTestDir("recover_serving");
  {
    ViewServer server;
    RegisterPersonnelViews(&server);
    auto store = DocumentStore::Open(&server, Durable(dir));
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("docs", PersonnelDoc(8)).ok());
    const auto alternatives = MuxAlternatives(*(*store)->Find("docs"));
    Rng rng(5);
    for (int i = 0; i < 30; ++i) {
      const auto& [pid, initial] =
          alternatives[rng.NextBounded(alternatives.size())];
      ASSERT_TRUE((*store)
                      ->Apply("docs", {DocMutation::SetEdgeProb(
                                          pid, initial * rng.NextDouble())})
                      .ok());
    }
  }

  // A live in-memory store keeps applying (stamping fresh versions,
  // interning labels) and answering while Open() replays the directory —
  // recovery's Deserialize bumps the process-global version counter and
  // resolves the same interner concurrently.
  ViewServer live_server;
  RegisterPersonnelViews(&live_server);
  DocumentStore live(&live_server);
  ASSERT_TRUE(live.Put("docs", PersonnelDoc(8)).ok());
  const auto alternatives = MuxAlternatives(*live.Find("docs"));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(6);
    while (!stop.load(std::memory_order_acquire)) {
      const auto& [pid, initial] =
          alternatives[rng.NextBounded(alternatives.size())];
      ASSERT_TRUE(live.Apply("docs", {DocMutation::SetEdgeProb(
                                         pid, initial * rng.NextDouble())})
                      .ok());
    }
  });
  std::thread reader([&] {
    const Pattern q = Tp("IT-personnel//person/bonus");
    while (!stop.load(std::memory_order_acquire)) {
      live.Answer("docs", q);
    }
  });

  for (int round = 0; round < 4; ++round) {
    ViewServer server;
    RegisterPersonnelViews(&server);
    auto recovered = DocumentStore::Open(&server, Durable(dir));
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    EXPECT_NE((*recovered)->Find("docs"), nullptr);
    EXPECT_TRUE((*recovered)
                    ->Answer("docs", Tp("IT-personnel//person/bonus"))
                    .has_value());
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  reader.join();
}

}  // namespace
}  // namespace pxv
