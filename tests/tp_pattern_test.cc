#include <gtest/gtest.h>

#include "gen/paper.h"
#include "tp/parser.h"
#include "tp/pattern.h"
#include "xml/canonical.h"

namespace pxv {
namespace {

TEST(PatternTest, BuildAndMainBranch) {
  Pattern q;
  const PNodeId a = q.AddRoot(Intern("a"));
  const PNodeId b = q.AddChild(a, Intern("b"), Axis::kChild);
  const PNodeId c = q.AddChild(b, Intern("c"), Axis::kDescendant);
  q.AddChild(b, Intern("p"), Axis::kChild);  // Predicate.
  q.SetOut(c);
  const auto mb = q.MainBranch();
  ASSERT_EQ(mb.size(), 3u);
  EXPECT_EQ(mb[0], a);
  EXPECT_EQ(mb[2], c);
  EXPECT_EQ(q.MainBranchLength(), 3);
  EXPECT_TRUE(q.OnMainBranch(b));
  EXPECT_FALSE(q.OnMainBranch(3));
  EXPECT_EQ(q.Depth(c), 3);
  EXPECT_EQ(q.MainBranchChild(b), c);
  EXPECT_EQ(q.MainBranchChild(c), kNullPNode);
  ASSERT_EQ(q.PredicateChildren(b).size(), 1u);
}

TEST(PatternTest, OutLabel) {
  const Pattern q = Tp("a/b[c]//d");
  EXPECT_EQ(LabelName(q.OutLabel()), "d");
}

TEST(XPathParserTest, PaperQueries) {
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  EXPECT_EQ(q.MainBranchLength(), 3);
  EXPECT_EQ(LabelName(q.OutLabel()), "bonus");
  EXPECT_EQ(q.size(), 6);
  // The person → bonus edge is /, IT-personnel → person is //.
  const auto mb = q.MainBranch();
  EXPECT_EQ(q.axis(mb[1]), Axis::kDescendant);
  EXPECT_EQ(q.axis(mb[2]), Axis::kChild);
}

TEST(XPathParserTest, PredicateAxes) {
  const Pattern q = Tp("a[.//c]/b");
  const auto preds = q.PredicateChildren(q.root());
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(q.axis(preds[0]), Axis::kDescendant);

  const Pattern q2 = Tp("a[c]/b");
  const auto preds2 = q2.PredicateChildren(q2.root());
  ASSERT_EQ(preds2.size(), 1u);
  EXPECT_EQ(q2.axis(preds2[0]), Axis::kChild);
}

TEST(XPathParserTest, DocLabels) {
  const Pattern q = Tp("doc(v1BON)/bonus[laptop]");
  EXPECT_EQ(LabelName(q.label(q.root())), "doc(v1BON)");
  EXPECT_EQ(q.MainBranchLength(), 2);
}

TEST(XPathParserTest, IdMarkers) {
  const Pattern q = Tp("c[Id(42)]/b");
  const auto preds = q.PredicateChildren(q.root());
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(LabelName(q.label(preds[0])), "Id(42)");
}

TEST(XPathParserTest, BranchingPredicates) {
  const Pattern q = Tp("a[b[c][d]]/e");
  EXPECT_EQ(q.size(), 5);
  EXPECT_EQ(q.MainBranchLength(), 2);
}

TEST(XPathParserTest, Errors) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("a[b").ok());
  EXPECT_FALSE(ParsePattern("a/").ok());
  EXPECT_FALSE(ParsePattern("a]b").ok());
}

TEST(XPathPrintTest, RoundTrips) {
  const char* cases[] = {
      "a/b",
      "a//b",
      "a[c]/b",
      "a[.//c]/b",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
      "a[b[c][d]]/e//f[g//h]",
      "a//b[e]/c/b/c//d",
  };
  for (const char* text : cases) {
    const Pattern q = Tp(text);
    const Pattern round = Tp(ToXPath(q));
    EXPECT_TRUE(IsomorphicPatterns(q, round)) << text << " → " << ToXPath(q);
  }
}

TEST(CanonicalPatternTest, AxisSensitivity) {
  EXPECT_FALSE(IsomorphicPatterns(Tp("a/b"), Tp("a//b")));
  EXPECT_FALSE(IsomorphicPatterns(Tp("a[b]/c"), Tp("a[.//b]/c")));
}

TEST(CanonicalPatternTest, OutSensitivity) {
  const Pattern q1 = Tp("a/b/c");
  Pattern q2 = Tp("a/b/c");
  q2.SetOut(q2.MainBranch()[1]);
  EXPECT_FALSE(IsomorphicPatterns(q1, q2));
}

TEST(CanonicalPatternTest, PredicateOrderInvariance) {
  EXPECT_TRUE(IsomorphicPatterns(Tp("a[b][c]/d"), Tp("a[c][b]/d")));
}

TEST(FingerprintTest, IsomorphicPatternsShareFingerprint) {
  // The plan-cache key: invariant under sibling (predicate) reordering …
  EXPECT_EQ(Tp("a[b][c]/d").Fingerprint(), Tp("a[c][b]/d").Fingerprint());
  EXPECT_EQ(Tp("a[x/y][.//z]/b").Fingerprint(),
            Tp("a[.//z][x/y]/b").Fingerprint());
}

TEST(FingerprintTest, DiscriminatesAxesPredicatesAndOut) {
  // … but sensitive to //-edges, predicates and the output node.
  EXPECT_NE(Tp("a/b").Fingerprint(), Tp("a//b").Fingerprint());
  EXPECT_NE(Tp("a/b").Fingerprint(), Tp("a/b[c]").Fingerprint());
  Pattern q1 = Tp("a/b/c");
  Pattern q2 = Tp("a/b/c");
  q2.SetOut(q2.MainBranch()[1]);
  EXPECT_NE(q1.Fingerprint(), q2.Fingerprint());
}

TEST(FingerprintTest, StableAcrossValues) {
  // FNV-1a of the canonical string — fixed by the algorithm, so safe to
  // persist outside the process (unlike std::hash).
  const Pattern q = Tp("a/b");
  EXPECT_EQ(q.Fingerprint(), CanonicalHash64(q.CanonicalString()));
}

TEST(GraftTest, CopiesSubtreeWithOut) {
  const Pattern src = Tp("a/b[c]/d");
  Pattern dst;
  dst.AddRoot(Intern("x"));
  PNodeId out_image = kNullPNode;
  GraftSubtree(src, src.MainBranch()[1], &dst, dst.root(), Axis::kDescendant,
               &out_image);
  EXPECT_EQ(dst.size(), 4);  // x, b, c, d.
  ASSERT_NE(out_image, kNullPNode);
  EXPECT_EQ(LabelName(dst.label(out_image)), "d");
}

}  // namespace
}  // namespace pxv
