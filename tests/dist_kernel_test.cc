// Flat-dist kernel suite (PR 3): unit tests for the arena / flat table /
// pool-vector primitives, plus the randomized equivalence harness pinning
// the rewritten engine (prob/engine.cc — arena-backed FlatDist, live-slot
// narrowing, dead-bit projection) against
//   (a) the pre-rewrite hash-map reference engine (engine_reference.cc) and
//   (b) the naive possible-world oracle,
// across all three evaluation paths (batch, conjunction, tracked/anchored),
// including the >32-live-slot wide-key fallback regime and deep documents.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "gen/querygen.h"
#include "prob/dist.h"
#include "prob/engine.h"
#include "prob/eval_session.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/arena.h"
#include "util/random.h"

namespace pxv {
namespace {

// ------------------------------------------------------------ primitives ---

TEST(ArenaTest, BumpAlignReset) {
  Arena arena(128);
  void* a = arena.Alloc(10);
  void* b = arena.Alloc(100, 8);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.allocated_bytes(), 110u);
  const size_t cap = arena.capacity_bytes();
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // Reset retains capacity; reallocation reuses the same chunks.
  void* c = arena.Alloc(10);
  EXPECT_EQ(c, a);
  EXPECT_EQ(arena.capacity_bytes(), cap);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  void* big = arena.Alloc(1 << 16);
  ASSERT_NE(big, nullptr);
  // The arena stays usable for small allocations afterwards.
  void* small = arena.Alloc(8);
  ASSERT_NE(small, nullptr);
  EXPECT_GE(arena.capacity_bytes(), size_t{1} << 16);
}

TEST(FlatDistTest, InlineThenPromoteAccumulates) {
  Arena arena;
  DistProfile profile;
  DistPool pool(&arena, &profile);
  FlatDist<uint64_t> d;
  d.Init(&pool);  // Inline mode.
  EXPECT_TRUE(d.inline_mode());
  d.Add(7, 0.25);
  d.Add(7, 0.25);  // Same key: stays inline, accumulates.
  EXPECT_TRUE(d.inline_mode());
  EXPECT_DOUBLE_EQ(d.Mass(7), 0.5);
  d.Add(9, 0.5);  // Second distinct key: promotes to a table.
  EXPECT_FALSE(d.inline_mode());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.Mass(7), 0.5);
  EXPECT_DOUBLE_EQ(d.Mass(9), 0.5);
  EXPECT_DOUBLE_EQ(d.Mass(8), 0.0);
}

TEST(FlatDistTest, GrowKeepsEveryEntry) {
  Arena arena;
  DistProfile profile;
  DistPool pool(&arena, &profile);
  FlatDist<uint64_t> d;
  d.Init(&pool, 2);
  for (uint64_t k = 0; k < 200; ++k) d.Add(k * 13, 1.0 + k);
  EXPECT_EQ(d.size(), 200u);
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_DOUBLE_EQ(d.Mass(k * 13), 1.0 + k) << k;
  }
  EXPECT_GT(profile.rehashes, 0u);
  double total = 0;
  d.ForEach([&](uint64_t, double v) { total += v; });
  EXPECT_NEAR(total, 200 * 1.0 + 199 * 200 / 2.0, 1e-9);
}

TEST(FlatDistTest, WideKeysCloneScalePrune) {
  Arena arena;
  DistProfile profile;
  DistPool pool(&arena, &profile);
  FlatDist<WideKey> d;
  d.Init(&pool, 3);
  WideKey a, b;
  a.w[0] = 1;
  b.w[3] = uint64_t{1} << 63;
  d.Add(a, 0.5);
  d.Add(b, 1e-15);
  FlatDist<WideKey> copy = d.Clone();
  copy.ScaleAll(2.0);
  EXPECT_DOUBLE_EQ(copy.Mass(a), 1.0);
  EXPECT_DOUBLE_EQ(d.Mass(a), 0.5);  // Clone is independent.
  d.Prune(1e-12);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.Mass(b), 0.0);
  EXPECT_EQ(profile.pruned_entries, 1u);
}

TEST(FlatDistTest, ReleaseRecyclesBlocks) {
  Arena arena;
  DistProfile profile;
  DistPool pool(&arena, &profile);
  {
    FlatDist<uint64_t> d;
    d.Init(&pool, 4);
    d.Add(1, 1.0);
  }  // Destructor releases the block.
  const uint64_t allocs = profile.table_allocs;
  FlatDist<uint64_t> e;
  e.Init(&pool, 4);  // Same size class: served from the free list.
  EXPECT_EQ(profile.table_allocs, allocs);
  EXPECT_GT(profile.table_reuses, 0u);
}

TEST(PoolVecTest, GrowRelocateTruncate) {
  Arena arena;
  DistProfile profile;
  DistPool pool(&arena, &profile);
  PoolVec<FlatDist<uint64_t>> v;
  for (int i = 0; i < 50; ++i) {
    FlatDist<uint64_t>& d = v.EmplaceBack(&pool);
    d.Init(&pool);
    d.Add(static_cast<uint64_t>(i), i * 1.0);
  }
  ASSERT_EQ(v.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(v[i].Mass(static_cast<uint64_t>(i)), i * 1.0);
  }
  v.Truncate(10);
  EXPECT_EQ(v.size(), 10u);
  v.Clear();
  EXPECT_TRUE(v.empty());
}

// ------------------------------------------------- equivalence harness ----

std::map<NodeId, double> ByNode(const std::vector<NodeProb>& results) {
  std::map<NodeId, double> out;
  for (const NodeProb& np : results) out[np.node] = np.prob;
  return out;
}

void ExpectSameMap(const std::map<NodeId, double>& expected,
                   const std::map<NodeId, double>& actual, double tol,
                   const std::string& what) {
  for (const auto& [n, p] : expected) {
    if (p < 1e-12) continue;
    ASSERT_TRUE(actual.count(n)) << what << ": missing node " << n;
    EXPECT_NEAR(actual.at(n), p, tol) << what << ": node " << n;
  }
  for (const auto& [n, p] : actual) {
    const double e = expected.count(n) ? expected.at(n) : 0.0;
    EXPECT_NEAR(p, e, tol) << what << ": extra mass at node " << n;
  }
}

// Random TP: flat kernel vs reference engine vs naive oracle.
class FlatVsReferenceVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(FlatVsReferenceVsOracle, BatchAgrees) {
  Rng rng(7000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 15;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2 + GetParam() % 3;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = RandomQuery(rng, qo);
  const auto flat = ByNode(BatchSelectionProbabilities(pd, q));
  const auto ref = ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q}));
  ExpectSameMap(ref, flat, 1e-9, "flat vs reference");
  std::map<NodeId, double> naive;
  for (const auto& [n, p] : NaiveEvaluateTP(pd, q)) {
    if (p > 1e-12) naive[n] = p;
  }
  ExpectSameMap(naive, flat, 1e-9, "flat vs oracle");
}

TEST_P(FlatVsReferenceVsOracle, AnchoredConjunctionAgrees) {
  Rng rng(8000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 12;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern a = RandomQuery(rng, qo);
  const Pattern b = RandomQuery(rng, qo);
  // Anchored conjunction per candidate — the tracked/anchored path with
  // per-node anchor filtering (bypasses the label-mask cache).
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.label(n) != a.OutLabel()) continue;
    std::vector<NodeId> anchor{n};
    std::vector<Goal> goals{{&a, &anchor}, {&b, nullptr}};
    EXPECT_NEAR(ConjunctionProbability(pd, goals),
                ReferenceConjunctionProbability(pd, goals), 1e-9)
        << "anchor " << n;
  }
  // Boolean conjunction.
  std::vector<Goal> boolean{{&a, nullptr}, {&b, nullptr}};
  EXPECT_NEAR(ConjunctionProbability(pd, boolean),
              ReferenceConjunctionProbability(pd, boolean), 1e-9);
}

TEST_P(FlatVsReferenceVsOracle, BatchManyAgreesWithPerMember) {
  Rng rng(9000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 16;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  std::vector<Pattern> queries;
  while (queries.size() < 3) {
    Pattern q = RandomQuery(rng, qo);
    if (queries.empty() || q.OutLabel() == queries[0].OutLabel()) {
      queries.push_back(std::move(q));
    }
  }
  std::vector<const Pattern*> members;
  for (const Pattern& q : queries) members.push_back(&q);
  const auto joint = BatchManyProbabilities(pd, members);
  ASSERT_EQ(joint.size(), members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    ExpectSameMap(ByNode(BatchSelectionProbabilities(pd, *members[i])),
                  ByNode(joint[i]), 1e-9,
                  "joint member " + std::to_string(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatVsReferenceVsOracle,
                         ::testing::Range(0, 40));

// --------------------------------------------- wide-key fallback regime ----

// A query with more than kNarrowSlotCap slots whose labels all occur in the
// document: the root (and inner) frames exceed 32 live slots and must run
// on 256-bit keys, while leaf subtrees stay narrow — exercising the
// narrow→wide remap boundary.
TEST(WideKeyFallback, BigPatternAgainstReferenceAndOracle) {
  PDocument pd;
  const NodeId r = pd.AddRoot(Intern("r"));
  const NodeId ind = pd.AddDistributional(r, PKind::kInd);
  for (int copy = 0; copy < 2; ++copy) {
    const NodeId b = pd.AddOrdinary(ind, Intern("b"), 0.5 + 0.25 * copy);
    const NodeId mux = pd.AddDistributional(b, PKind::kMux);
    const NodeId grp1 = pd.AddOrdinary(mux, Intern("g"), 0.6);
    const NodeId grp2 = pd.AddOrdinary(mux, Intern("g"), 0.4);
    for (int i = 0; i < 36; ++i) {
      pd.AddOrdinary(i % 2 ? grp1 : grp2, Intern("p" + std::to_string(i)));
    }
  }
  ASSERT_TRUE(pd.Validate().ok());

  // r//b with 36 distinct predicate grandchildren: 2 + 36 + 1 = 39 slots.
  Pattern q;
  const PNodeId qr = q.AddRoot(Intern("r"));
  const PNodeId qb = q.AddChild(qr, Intern("b"), Axis::kDescendant);
  const PNodeId qg = q.AddChild(qb, Intern("g"), Axis::kChild);
  for (int i = 0; i < 36; ++i) {
    q.AddChild(qg, Intern("p" + std::to_string(i)), Axis::kDescendant);
  }
  q.SetOut(qb);
  ASSERT_GT(BatchSlotCount({&q}), kNarrowSlotCap);

  const auto flat = ByNode(BatchSelectionProbabilities(pd, q));
  const auto ref = ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q}));
  ExpectSameMap(ref, flat, 1e-9, "wide flat vs reference");
  std::map<NodeId, double> naive;
  for (const auto& [n, p] : NaiveEvaluateTP(pd, q)) {
    if (p > 1e-12) naive[n] = p;
  }
  ExpectSameMap(naive, flat, 1e-9, "wide flat vs oracle");
}

// Randomized wide-regime conjunctions: several goals totaling > 32 slots.
TEST(WideKeyFallback, RandomizedConjunctions) {
  for (int seed = 0; seed < 10; ++seed) {
    Rng rng(11000 + seed);
    DocGenOptions d;
    d.target_nodes = 14;
    d.label_count = 3;
    QueryGenOptions qo;
    qo.depth = 3;
    qo.label_count = 3;
    const PDocument pd = RandomPDocument(rng, d);
    // Enough random goals to cross the narrow cap.
    std::vector<Pattern> patterns;
    std::vector<Goal> goals;
    int slots = 0;
    while (slots <= kNarrowSlotCap) {
      patterns.push_back(RandomQuery(rng, qo));
      slots += patterns.back().size();
    }
    goals.reserve(patterns.size());
    for (const Pattern& p : patterns) goals.push_back({&p, nullptr});
    ASSERT_GT(ConjunctionSlotCount(goals), kNarrowSlotCap);
    EXPECT_NEAR(ConjunctionProbability(pd, goals),
                ReferenceConjunctionProbability(pd, goals), 1e-9)
        << "seed " << seed;
  }
}

// ------------------------------------------------------- deep documents ----

// A 600-level chain of ind-edges: beyond the oracle's reach, far beyond any
// recursive engine's comfort; flat vs reference must agree to the end.
TEST(DeepDocument, LongChainAgreesWithReference) {
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  Rng rng(99);
  for (int i = 0; i < 600; ++i) {
    const NodeId ind = pd.AddDistributional(cur, PKind::kInd);
    cur = pd.AddOrdinary(ind, Intern("m"), 0.99 + 0.009 * rng.NextDouble());
    if (i % 37 == 0) pd.AddOrdinary(cur, Intern("c"));
  }
  pd.AddOrdinary(cur, Intern("z"));
  const Pattern q = Tp("a//m[c]");
  const auto flat = ByNode(BatchSelectionProbabilities(pd, q));
  const auto ref = ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q}));
  ASSERT_FALSE(flat.empty());
  ExpectSameMap(ref, flat, 1e-9, "deep chain");
  const Pattern qz = Tp("a//z");
  const std::vector<Goal> gz{{&qz, nullptr}};
  EXPECT_NEAR(BooleanProbability(pd, qz),
              ReferenceConjunctionProbability(pd, gz), 1e-9);
}

// ------------------------------------------- SIMD vs scalar vs reference ---
//
// Summation-order contract (prob/simd.h): the AVX2 and portable kernels
// walk the SAME SoA value lanes in the SAME order and perform the SAME
// pairwise multiply-adds (no FMA contraction, no reassociation), and IEEE
// 754 arithmetic is deterministic — so the two kernels must agree BITWISE,
// asserted below with exact double equality. The hash-map reference engine
// sums in a different (table-iteration) order, so against it the contract
// is the documented 1e-9 epsilon instead.

std::map<NodeId, double> KernelBatch(const PDocument& pd, const Pattern& q,
                                     bool force_scalar) {
  EvalOptions opts;
  opts.backend = BackendKind::kExact;
  opts.force_scalar = force_scalar;
  EvalSession session(pd, opts);
  return ByNode(session.EvaluateTP(q));
}

void ExpectBitwiseEqual(const std::map<NodeId, double>& simd,
                        const std::map<NodeId, double>& scalar,
                        const std::string& what) {
  ASSERT_EQ(simd.size(), scalar.size()) << what;
  auto it = scalar.begin();
  for (const auto& [n, p] : simd) {
    ASSERT_EQ(n, it->first) << what;
    EXPECT_EQ(p, it->second) << what << ": node " << n;  // Exact, last ulp.
    ++it;
  }
}

class SimdVsScalar : public ::testing::TestWithParam<int> {};

// Random documents with grafted exp groups: the explicit-subset path runs
// under both kernels and must not perturb a single bit.
TEST_P(SimdVsScalar, RandomDocsWithExpNodes) {
  Rng rng(21000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 18;
  d.label_count = 3;
  PDocument pd = RandomPDocument(rng, d);
  std::vector<NodeId> hosts;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n)) hosts.push_back(n);
  }
  for (int g = 0; g < 2; ++g) {
    const NodeId host =
        hosts[rng.NextBounded(static_cast<uint64_t>(hosts.size()))];
    const NodeId exp = pd.AddExp(host);
    pd.AddOrdinary(exp, Intern("b"));
    pd.AddOrdinary(exp, Intern("c"));
    pd.SetExpDistribution(
        exp, {{{0, 1}, 0.2 + 0.2 * rng.NextDouble()},
              {{0}, 0.1 + 0.1 * rng.NextDouble()},
              {{1}, 0.1 * rng.NextDouble()}});
  }
  ASSERT_TRUE(pd.Validate().ok());
  QueryGenOptions qo;
  qo.depth = 2 + GetParam() % 3;
  qo.label_count = 3;
  const Pattern q = RandomQuery(rng, qo);
  const auto simd = KernelBatch(pd, q, /*force_scalar=*/false);
  const auto scalar = KernelBatch(pd, q, /*force_scalar=*/true);
  ExpectBitwiseEqual(simd, scalar, "simd vs scalar");
  ExpectSameMap(ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q})), simd,
                1e-9, "simd vs reference");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdVsScalar, ::testing::Range(0, 30));

// The >32-slot wide-key regime: 256-bit lanes take the AVX2 gather path,
// narrow leaf subtrees the 64-bit one — both boundaries must stay bitwise.
TEST(SimdVsScalarTest, WideKeyRegime) {
  PDocument pd;
  const NodeId r = pd.AddRoot(Intern("r"));
  const NodeId ind = pd.AddDistributional(r, PKind::kInd);
  for (int copy = 0; copy < 2; ++copy) {
    const NodeId b = pd.AddOrdinary(ind, Intern("b"), 0.5 + 0.25 * copy);
    const NodeId mux = pd.AddDistributional(b, PKind::kMux);
    const NodeId grp1 = pd.AddOrdinary(mux, Intern("g"), 0.6);
    const NodeId grp2 = pd.AddOrdinary(mux, Intern("g"), 0.4);
    // All 36 predicates satisfiable via grp1 (nonzero results); grp2 holds
    // half of them, a strictly-partial decoy branch.
    for (int i = 0; i < 36; ++i) {
      pd.AddOrdinary(grp1, Intern("p" + std::to_string(i)));
      if (i % 2) pd.AddOrdinary(grp2, Intern("p" + std::to_string(i)));
    }
  }
  Pattern q;
  const PNodeId qr = q.AddRoot(Intern("r"));
  const PNodeId qb = q.AddChild(qr, Intern("b"), Axis::kDescendant);
  const PNodeId qg = q.AddChild(qb, Intern("g"), Axis::kChild);
  for (int i = 0; i < 36; ++i) {
    q.AddChild(qg, Intern("p" + std::to_string(i)), Axis::kDescendant);
  }
  q.SetOut(qb);
  ASSERT_GT(BatchSlotCount({&q}), kNarrowSlotCap);
  const auto simd = KernelBatch(pd, q, /*force_scalar=*/false);
  const auto scalar = KernelBatch(pd, q, /*force_scalar=*/true);
  ASSERT_FALSE(simd.empty());
  ExpectBitwiseEqual(simd, scalar, "wide simd vs scalar");
  ExpectSameMap(ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q})), simd,
                1e-9, "wide simd vs reference");
}

// 600-deep ind chain: 600 stacked convolutions amplify any kernel
// divergence; bitwise equality here means the whole cascade is identical.
TEST(SimdVsScalarTest, DeepChain) {
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  Rng rng(77);
  for (int i = 0; i < 600; ++i) {
    const NodeId ind = pd.AddDistributional(cur, PKind::kInd);
    cur = pd.AddOrdinary(ind, Intern("m"), 0.99 + 0.009 * rng.NextDouble());
    if (i % 41 == 0) pd.AddOrdinary(cur, Intern("c"));
  }
  const Pattern q = Tp("a//m[c]");
  const auto simd = KernelBatch(pd, q, /*force_scalar=*/false);
  const auto scalar = KernelBatch(pd, q, /*force_scalar=*/true);
  ASSERT_FALSE(simd.empty());
  ExpectBitwiseEqual(simd, scalar, "deep simd vs scalar");
  ExpectSameMap(ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q})), simd,
                1e-9, "deep simd vs reference");
}

// ------------------------------------------------ pruning & observability ---

TEST(SupportPruning, DefaultOffIsExactAndEpsBoundHolds) {
  Rng rng(4242);
  const PDocument pd = PersonnelPDocument(rng, 30);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  EvalSession exact(pd);
  EvalOptions pruned_opts;
  pruned_opts.prune_eps = 1e-12;
  EvalSession pruned(pd, pruned_opts);
  const auto e = ByNode(exact.EvaluateTP(q));
  const auto p = ByNode(pruned.EvaluateTP(q));
  // kProbEps-level pruning must stay within the documented error bound —
  // far below any probability of interest here.
  ExpectSameMap(e, p, 1e-8, "eps pruning");
  // Default (eps = 0) matches the reference engine exactly.
  ExpectSameMap(ByNode(ReferenceBatchAnchoredProbabilities(pd, {&q})), e,
                1e-9, "exact default");
}

TEST(DpProfileCounters, CountersAdvance) {
  Rng rng(17);
  const PDocument pd = PersonnelPDocument(rng, 20);
  const Pattern q = Tp("IT-personnel//person/bonus");
  DpScratch scratch;
  const auto r = BatchAnchoredProbabilities(pd, {&q}, &scratch, {});
  ASSERT_FALSE(r.empty());
  const DistProfile& prof =
      static_cast<const DpScratch&>(scratch).profile();
  EXPECT_EQ(prof.runs, 1u);
  EXPECT_GT(prof.narrow_nodes, 0u);
  EXPECT_EQ(prof.wide_nodes, 0u);  // Small query: uniform narrow frame.
  EXPECT_GT(prof.table_allocs + prof.table_reuses, 0u);
  EXPECT_GT(prof.arena_peak_bytes, 0u);
}

TEST(PrefetchTP, MatchesIndividualEvaluation) {
  Rng rng(2026);
  const PDocument pd = PersonnelPDocument(rng, 25);
  const std::vector<Pattern> queries = {
      Tp("IT-personnel//person/bonus"),
      Tp("IT-personnel//person[name/Rick]/bonus"),
      Tp("IT-personnel//person/bonus[laptop]"),
  };
  EvalSession prefetched(pd);
  std::vector<const Pattern*> ptrs;
  for (const Pattern& q : queries) ptrs.push_back(&q);
  prefetched.PrefetchTP(ptrs);
  for (const Pattern& q : queries) {
    EvalSession individual(pd);
    ExpectSameMap(ByNode(individual.EvaluateTP(q)),
                  ByNode(prefetched.EvaluateTP(q)), 1e-9,
                  "prefetch " + q.CanonicalString());
  }
}

}  // namespace
}  // namespace pxv
