#include <gtest/gtest.h>

#include <map>

#include "gen/docgen.h"
#include "pxml/parser.h"
#include "gen/paper.h"
#include "prob/query_eval.h"
#include "rewrite/rewriter.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/containment.h"
#include "tp/parser.h"

namespace pxv {
namespace {

std::map<PersistentId, double> DirectAnswer(const PDocument& pd,
                                            const Pattern& q) {
  std::map<PersistentId, double> out;
  for (const NodeProb& np : EvaluateTP(pd, q)) out[pd.pid(np.node)] = np.prob;
  return out;
}

void ExpectSameAnswers(const std::map<PersistentId, double>& direct,
                       const std::map<PersistentId, double>& via,
                       const char* context) {
  for (const auto& [pid, p] : direct) {
    ASSERT_TRUE(via.count(pid)) << context << ": missing pid " << pid;
    EXPECT_NEAR(via.at(pid), p, 1e-9) << context << " pid " << pid;
  }
  for (const auto& [pid, p] : via) {
    EXPECT_TRUE(direct.count(pid)) << context << ": spurious pid " << pid;
  }
}

// Example 15: q_RBON ≡ v1_BON ∩ comp(v2_BON, q_(3)); the probability is
// 0.75 × 0.9 ÷ 1 = 0.675.
TEST(TpiRewriteTest, PaperExample15) {
  const PDocument pd = paper::PDocPER();
  const std::vector<NamedView> views = {{"v1BON", paper::ViewV1BON()},
                                        {"v2BON", paper::ViewV2BON()}};
  const auto rw = TPIrewrite(paper::QueryRBON(), views);
  ASSERT_TRUE(rw.has_value());

  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(pd);
  std::map<PersistentId, double> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    via[pp.pid] = pp.prob;
  }
  ASSERT_EQ(via.size(), 1u);
  EXPECT_NEAR(via.at(5), 0.675, 1e-9);
}

// Example 16 end-to-end: the product with exponents (1/2,1/2,1/2,−1/2).
TEST(TpiRewriteTest, Example16EndToEnd) {
  const auto pd = ParsePDocument(
      "a(mux(1@0.8), b(mux(2@0.7), c(mux(3@0.6), mux(d@0.9))))");
  ASSERT_TRUE(pd.ok());
  std::vector<NamedView> views;
  for (int i = 1; i <= 4; ++i) {
    views.push_back({"v" + std::to_string(i), paper::View16(i)});
  }
  const Pattern q = paper::Query16();
  const auto rw = TPIrewrite(q, views);
  ASSERT_TRUE(rw.has_value());

  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(*pd);
  std::map<PersistentId, double> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    via[pp.pid] = pp.prob;
  }
  ExpectSameAnswers(DirectAnswer(*pd, q), via, "example 16");
}

// Theorem 3 with the running example (Example 15's view selection).
TEST(TpiRewriteTest, PairwiseIndependentSubset) {
  // Compensated v2 is provided pre-compensated as its own view here.
  const std::vector<NamedView> views = {
      {"v1BON", paper::ViewV1BON()},
      {"v2comp", Tp("IT-personnel//person/bonus[laptop]")},
      {"mbq", Tp("IT-personnel//person/bonus")},
  };
  const auto subset =
      FindPairwiseIndependentSubset(paper::QueryRBON(), views);
  ASSERT_TRUE(subset.has_value());
  // v1BON ∩ v2comp ≡ q_RBON, both pairwise independent; mb(q) ⊑ v2comp?
  // No: v2comp has the [laptop] predicate but mb(q) ⊑ means containment of
  // the linear query — mb(q) ⊑ v2comp fails, mb(q) ⊑ mbq holds, so the
  // subset includes mbq or relies on v1BON/v2comp… assert correctness:
  // executing the product formula reproduces the direct answer.
  const PDocument pd = paper::PDocPER();
  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(pd);
  int lemma3 = -1;
  const Pattern mb_q = Tp("IT-personnel//person/bonus");
  for (int i : *subset) {
    if (Contains(views[i].def, mb_q)) lemma3 = i;
  }
  ASSERT_GE(lemma3, 0);
  std::map<PersistentId, double> via;
  for (const PidProb& pp :
       ExecuteProductRewriting(views, *subset, lemma3, exts)) {
    via[pp.pid] = pp.prob;
  }
  ExpectSameAnswers(DirectAnswer(pd, paper::QueryRBON()), via, "theorem 3");
}

TEST(TpiRewriteTest, NoRewritingWithoutEquivalence) {
  // The view skips depth 2, so compensation can never reintroduce the [c]
  // predicate of the query: no plan is equivalent.
  const std::vector<NamedView> views = {{"v", Tp("a/b/d")}};
  EXPECT_FALSE(TPIrewrite(Tp("a/b[c]/d"), views).has_value());
}

TEST(TpiRewriteTest, CompensationAloneCanRewrite) {
  // a/b suffices for a/b[c]/d: comp(v, q_(2)) ≡ q (cf. §5.4).
  const std::vector<NamedView> views = {{"v", Tp("a/b")}};
  const auto rw = TPIrewrite(Tp("a/b[c]/d"), views);
  ASSERT_TRUE(rw.has_value());
  const auto pd = ParsePDocument("a(b(mux(c@0.4), mux(d@0.9)))");
  ASSERT_TRUE(pd.ok());
  Rewriter rewriter;
  rewriter.AddView("v", Tp("a/b"));
  const ViewExtensions exts = rewriter.Materialize(*pd);
  std::map<PersistentId, double> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    via[pp.pid] = pp.prob;
  }
  ExpectSameAnswers(DirectAnswer(*pd, Tp("a/b[c]/d")), via, "comp alone");
}

TEST(TpiRewriteTest, DependentViewsNeedSystem) {
  // Example 16 without v4: deterministic rewriting exists, probabilistic
  // does not (the system has no unique solution).
  std::vector<NamedView> views;
  for (int i = 1; i <= 3; ++i) {
    views.push_back({"v" + std::to_string(i), paper::View16(i)});
  }
  EXPECT_FALSE(TPIrewrite(paper::Query16(), views).has_value());
}

TEST(TpiRewriteTest, CompensationEnablesRewriting) {
  // Only v2BON (no laptop predicate anywhere): q_BON needs the compensated
  // member comp(v2BON, bonus[laptop]).
  const std::vector<NamedView> views = {{"v2BON", paper::ViewV2BON()}};
  const auto rw = TPIrewrite(paper::QueryBON(), views);
  ASSERT_TRUE(rw.has_value());
  bool has_compensated = false;
  for (const TpiMember& m : rw->members) has_compensated |= m.compensated;
  EXPECT_TRUE(has_compensated);

  const PDocument pd = paper::PDocPER();
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const ViewExtensions exts = rewriter.Materialize(pd);
  std::map<PersistentId, double> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    via[pp.pid] = pp.prob;
  }
  ExpectSameAnswers(DirectAnswer(pd, paper::QueryBON()), via, "compensated");
}

// Randomized end-to-end property over personnel documents.
class TpiProperty : public ::testing::TestWithParam<int> {};

TEST_P(TpiProperty, RewritingMatchesDirect) {
  Rng rng(700 + GetParam());
  const PDocument pd = PersonnelPDocument(rng, 3 + GetParam() % 3);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  const std::vector<NamedView> views = {
      {"rick", Tp("IT-personnel//person[name/Rick]/bonus")},
      {"laptop", Tp("IT-personnel//person/bonus[laptop]")},
      {"all", Tp("IT-personnel//person/bonus")},
  };
  const auto rw = TPIrewrite(q, views);
  ASSERT_TRUE(rw.has_value());
  Rewriter rewriter;
  for (const NamedView& v : views) rewriter.AddView(v.name, v.def.Clone());
  const ViewExtensions exts = rewriter.Materialize(pd);
  std::map<PersistentId, double> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) {
    via[pp.pid] = pp.prob;
  }
  ExpectSameAnswers(DirectAnswer(pd, q), via, "tpi property");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpiProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace pxv
