// Stress and statistical validation of the probabilistic engine beyond the
// scales the enumeration oracle can reach, plus det/exp model coverage.

#include <gtest/gtest.h>

#include <map>

#include <cmath>

#include "gen/docgen.h"
#include "gen/querygen.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/sampler.h"
#include "tp/eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// Monte-Carlo cross-check on documents too large for exact enumeration: the
// empirical selection frequency converges to the engine's probability.
class MonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(MonteCarlo, EngineMatchesSampling) {
  Rng rng(9000 + GetParam());
  const PDocument pd = PersonnelPDocument(rng, 12);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");

  std::map<PersistentId, double> expected;
  for (const NodeProb& np : EvaluateTP(pd, q)) {
    expected[pd.pid(np.node)] = np.prob;
  }

  const int samples = 30000;
  std::map<PersistentId, int> hits;
  for (int i = 0; i < samples; ++i) {
    const SampledWorld w = SampleWorld(pd, rng);
    for (NodeId n : Evaluate(q, w.doc)) ++hits[w.doc.pid(n)];
  }
  for (const auto& [pid, p] : expected) {
    const double freq = static_cast<double>(hits[pid]) / samples;
    EXPECT_NEAR(freq, p, 0.02) << "pid " << pid;
  }
  for (const auto& [pid, count] : hits) {
    EXPECT_TRUE(expected.count(pid)) << "sampled answer engine missed: "
                                     << pid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonteCarlo, ::testing::Range(0, 4));

TEST(EngineStressTest, DetNodesGroupDeterministically) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  const NodeId det = pd.AddDistributional(mux, PKind::kDet, 0.4);
  pd.AddOrdinary(det, Intern("b"));
  pd.AddOrdinary(det, Intern("c"));
  pd.AddOrdinary(mux, Intern("b"), 0.6);
  ASSERT_TRUE(pd.Validate().ok());
  // [b][c] both present only via the det branch: 0.4.
  const Pattern both = Tp("a[b][c]/b");
  EXPECT_NEAR(BooleanProbability(pd, Tp("a[b][c]")), 0.4, 1e-12);
  EXPECT_NEAR(BooleanProbability(pd, Tp("a[b]")), 1.0, 1e-12);
  EXPECT_NEAR(NaiveBooleanProbability(pd, Tp("a[b][c]")), 0.4, 1e-12);
  (void)both;
}

TEST(EngineStressTest, ExpCorrelationsAgainstNaive) {
  Rng rng(123);
  for (int trial = 0; trial < 5; ++trial) {
    PDocument pd;
    const NodeId a = pd.AddRoot(Intern("a"));
    const NodeId exp = pd.AddExp(a);
    pd.AddOrdinary(exp, Intern("b"));
    pd.AddOrdinary(exp, Intern("c"));
    pd.AddOrdinary(exp, Intern("d"));
    const double p1 = 0.2 + 0.3 * rng.NextDouble();
    const double p2 = 0.1 + 0.2 * rng.NextDouble();
    pd.SetExpDistribution(exp, {{{0, 1}, p1}, {{1, 2}, p2}, {{0}, 0.1}});
    ASSERT_TRUE(pd.Validate().ok());
    for (const char* text : {"a[b]", "a[c]", "a[b][c]", "a[c][d]", "a[b][d]"}) {
      const Pattern q = Tp(text);
      EXPECT_NEAR(BooleanProbability(pd, q), NaiveBooleanProbability(pd, q),
                  1e-9)
          << text;
    }
  }
}

TEST(EngineStressTest, DeepChainNoStackIssue) {
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  for (int i = 0; i < 3000; ++i) {
    const NodeId mux = pd.AddDistributional(cur, PKind::kMux);
    cur = pd.AddOrdinary(mux, Intern("m"), 0.999);
  }
  pd.AddOrdinary(cur, Intern("z"));
  const auto result = EvaluateTP(pd, Tp("a//z"));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_NEAR(result[0].prob, std::pow(0.999, 3000), 1e-9);
}

TEST(EngineStressTest, WideFanout) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  for (int i = 0; i < 2000; ++i) {
    const NodeId mux = pd.AddDistributional(a, PKind::kMux);
    const NodeId b = pd.AddOrdinary(mux, Intern("b"), 0.001);
    pd.AddOrdinary(b, Intern("c"));
  }
  // Pr(some b[c]) = 1 − 0.999^2000.
  EXPECT_NEAR(BooleanProbability(pd, Tp("a/b[c]")),
              1.0 - std::pow(0.999, 2000), 1e-9);
}

TEST(EngineStressTest, ZeroAndOneProbabilities) {
  const auto pd = ParsePDocument("a(mux(b@0, c@1.0), d)");
  ASSERT_TRUE(pd.ok());
  EXPECT_NEAR(BooleanProbability(*pd, Tp("a[b]")), 0.0, 1e-12);
  EXPECT_NEAR(BooleanProbability(*pd, Tp("a[c]")), 1.0, 1e-12);
}

}  // namespace
}  // namespace pxv
