#include <gtest/gtest.h>

#include "gen/matching.h"
#include "rewrite/cindependence.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/ops.h"
#include "tpi/equivalence.h"
#include "util/random.h"

namespace pxv {
namespace {

TEST(MatchingGenTest, PlantedInstanceHasMatching) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const Hypergraph h = PlantedMatchingInstance(rng, 9, 3, 4);
    EXPECT_EQ(h.edges.size(), 7u);
    EXPECT_TRUE(HasPerfectMatching(h));
  }
}

TEST(MatchingGenTest, ObviousNegative) {
  // Two overlapping edges cannot cover 6 vertices.
  Hypergraph h;
  h.s = 6;
  h.k = 3;
  h.edges = {{0, 1, 2}, {0, 3, 4}};
  EXPECT_FALSE(HasPerfectMatching(h));
}

TEST(MatchingGenTest, QueryAndViewShapes) {
  const Pattern q = MatchingQuery(6);
  EXPECT_EQ(q.MainBranchLength(), 7);  // Six a's and the b.
  Hypergraph h;
  h.s = 6;
  h.k = 3;
  h.edges = {{0, 1, 2}, {3, 4, 5}};
  const auto views = MatchingViews(h);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].def.size(), 7 + 3);  // Chain + b + 3 predicates.
}

// The reduction's key property: views are c-independent iff their edges are
// disjoint.
TEST(MatchingTest, CIndependenceMirrorsEdgeDisjointness) {
  Hypergraph h;
  h.s = 6;
  h.k = 3;
  h.edges = {{0, 1, 2}, {3, 4, 5}, {0, 3, 4}};
  const auto views = MatchingViews(h);
  EXPECT_TRUE(CIndependent(views[0].def, views[1].def));   // Disjoint.
  EXPECT_FALSE(CIndependent(views[0].def, views[2].def));  // Share 0.
  EXPECT_FALSE(CIndependent(views[1].def, views[2].def));  // Share 3, 4.
}

// A perfect matching's views intersect to the query.
TEST(MatchingTest, MatchingViewsRewriteQuery) {
  Hypergraph h;
  h.s = 6;
  h.k = 3;
  h.edges = {{0, 1, 2}, {3, 4, 5}};
  const Pattern q = MatchingQuery(6);
  TpIntersection in;
  for (const auto& v : MatchingViews(h)) in.Add(v.def.Clone());
  EXPECT_TRUE(EquivalentTpIntersection(q, in));
}

TEST(MatchingTest, NonCoveringViewsDoNotRewrite) {
  Hypergraph h;
  h.s = 6;
  h.k = 3;
  h.edges = {{0, 1, 2}, {2, 3, 4}};  // Vertex 5 uncovered.
  const Pattern q = MatchingQuery(6);
  TpIntersection in;
  for (const auto& v : MatchingViews(h)) in.Add(v.def.Clone());
  EXPECT_FALSE(EquivalentTpIntersection(q, in));
}

// FindPairwiseIndependentSubset solves the reduction on small instances:
// it finds a subset iff the hypergraph has a perfect matching.
TEST(MatchingTest, SubsetSearchSolvesSmallInstances) {
  Rng rng(7);
  const Hypergraph yes = PlantedMatchingInstance(rng, 6, 3, 2);
  // Lemma 3 needs a view containing mb(q): add the bare chain view.
  std::vector<NamedView> vy = MatchingViews(yes);
  vy.push_back({"mb", MainBranchOnly(MatchingQuery(yes.s))});
  const auto subset = FindPairwiseIndependentSubset(MatchingQuery(6), vy);
  EXPECT_TRUE(subset.has_value());

  Hypergraph no;
  no.s = 6;
  no.k = 3;
  no.edges = {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}};
  std::vector<NamedView> vn = MatchingViews(no);
  vn.push_back({"mb", MainBranchOnly(MatchingQuery(6))});
  EXPECT_FALSE(FindPairwiseIndependentSubset(MatchingQuery(6), vn).has_value());
}

}  // namespace
}  // namespace pxv
