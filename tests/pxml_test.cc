#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "pxml/parser.h"
#include "pxml/pdocument.h"
#include "pxml/sampler.h"
#include "pxml/worlds.h"
#include "xml/canonical.h"
#include "xml/parser.h"

namespace pxv {
namespace {

TEST(PDocumentTest, ValidateAcceptsPaperDocument) {
  const PDocument pd = paper::PDocPER();
  EXPECT_TRUE(pd.Validate().ok());
  EXPECT_EQ(pd.OrdinaryCount(), 21);
}

TEST(PDocumentTest, ValidateRejectsMuxOverflow) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  pd.AddOrdinary(mux, Intern("b"), 0.7);
  pd.AddOrdinary(mux, Intern("c"), 0.6);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, ValidateRejectsDistributionalLeaf) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  pd.AddDistributional(a, PKind::kInd);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, ValidateRejectsBadEdgeProb) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  pd.AddOrdinary(mux, Intern("b"), -0.5);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, OrdinaryAncestorSkipsDistributional) {
  const PDocument pd = paper::PDoc1();
  // The deep c node hangs under b via a mux.
  const NodeId c = pd.FindByPid(3);
  const NodeId b = pd.FindByPid(2);
  ASSERT_NE(c, kNullNode);
  EXPECT_EQ(pd.OrdinaryAncestor(c), b);
}

TEST(PDocumentTest, SubtreeKeepsProbabilities) {
  const PDocument pd = paper::PDocPER();
  const NodeId b5 = pd.FindByPid(5);
  const PDocument sub = pd.Subtree(b5);
  EXPECT_TRUE(sub.Validate().ok());
  // The mux below bonus[5] still carries 0.1 / 0.9.
  double found = 0;
  for (NodeId n = 0; n < sub.size(); ++n) {
    if (sub.ordinary(n) && sub.pid(n) == 24) found = sub.edge_prob(n);
  }
  EXPECT_DOUBLE_EQ(found, 0.9);
}

TEST(PParserTest, RoundTrip) {
  const char* text =
      "a(mux(b(c)@0.25, d@0.5), ind(e@0.75), f)";
  const auto pd = ParsePDocument(text);
  ASSERT_TRUE(pd.ok()) << pd.status().message();
  const auto round = ParsePDocument(ToPText(*pd));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(ToPText(*pd), ToPText(*round));
}

TEST(PParserTest, RejectsRootDistributional) {
  EXPECT_FALSE(ParsePDocument("mux(a@0.5)").ok());
}

TEST(PParserTest, RejectsProbOutsideMuxInd) {
  EXPECT_FALSE(ParsePDocument("a(b@0.5)").ok());
}

TEST(PParserTest, QuotedReservedLabel) {
  const auto pd = ParsePDocument("a(\"mux\")");
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(pd->OrdinaryCount(), 2);
}

TEST(WorldsTest, ProbabilitiesSumToOne) {
  const PDocument pd = paper::PDocPER();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  double total = 0;
  for (const World& w : *worlds) total += w.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// Example 3: the probability of d_PER among the worlds of P̂_PER is
// 0.75 × 0.9 × 0.7 × 1 × 1 = 0.4725.
TEST(WorldsTest, PaperExample3) {
  const PDocument pd = paper::PDocPER();
  const Document target = paper::DocPER();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  double prob = -1;
  for (const World& w : *worlds) {
    if (EqualWithPids(w.doc, target)) {
      prob = w.prob;
      break;
    }
  }
  EXPECT_NEAR(prob, 0.4725, 1e-12);
}

TEST(WorldsTest, MuxKeepsAtMostOne) {
  const auto pd = ParsePDocument("a(mux(b@0.4, c@0.4))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  // Worlds: {a}, {a,b}, {a,c}.
  EXPECT_EQ(worlds->size(), 3u);
  for (const World& w : *worlds) EXPECT_LE(w.doc.size(), 2);
}

TEST(WorldsTest, IndependentChoices) {
  const auto pd = ParsePDocument("a(ind(b@0.5, c@0.5))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 4u);
  for (const World& w : *worlds) EXPECT_NEAR(w.prob, 0.25, 1e-12);
}

TEST(WorldsTest, DetKeepsAll) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId det = pd.AddDistributional(a, PKind::kDet);
  pd.AddOrdinary(det, Intern("b"));
  pd.AddOrdinary(det, Intern("c"));
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_EQ((*worlds)[0].doc.size(), 3);
}

TEST(WorldsTest, ExpExplicitDistribution) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  // {b,c} w.p. 0.5, {b} w.p. 0.2, {} w.p. 0.3.
  pd.SetExpDistribution(exp, {{{0, 1}, 0.5}, {{0}, 0.2}});
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  std::map<int, double> by_size;
  for (const World& w : *worlds) by_size[w.doc.size()] += w.prob;
  EXPECT_NEAR(by_size[3], 0.5, 1e-12);
  EXPECT_NEAR(by_size[2], 0.2, 1e-12);
  EXPECT_NEAR(by_size[1], 0.3, 1e-12);
}

TEST(WorldsTest, DistributionalNodesSplicedOut) {
  const auto pd = ParsePDocument("a(mux(b(c)@1.0))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  const Document& doc = (*worlds)[0].doc;
  // b is a direct child of a.
  EXPECT_EQ(doc.size(), 3);
  EXPECT_EQ(doc.parent(doc.FindByPid(pd->pid(pd->FindByPid(2)))), 0);
}

TEST(AppearanceTest, MatchesEnumeration) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    DocGenOptions opt;
    opt.target_nodes = 12;
    const PDocument pd = RandomPDocument(rng, opt);
    const auto worlds = EnumerateWorlds(pd);
    ASSERT_TRUE(worlds.ok());
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (!pd.ordinary(n)) continue;
      double enumerated = 0;
      for (const World& w : *worlds) {
        if (w.pdoc_to_doc[n] != kNullNode) enumerated += w.prob;
      }
      EXPECT_NEAR(AppearanceProbability(pd, n), enumerated, 1e-9)
          << "node " << n << " trial " << trial;
    }
  }
}

TEST(SamplerTest, ConvergesToWorldDistribution) {
  const PDocument pd = paper::PDoc2();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  std::map<std::string, double> expected;
  for (const World& w : *worlds) {
    expected[CanonicalStringWithPids(w.doc)] += w.prob;
  }
  Rng rng(77);
  std::map<std::string, double> observed;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const SampledWorld sw = SampleWorld(pd, rng);
    observed[CanonicalStringWithPids(sw.doc)] += 1.0 / n;
  }
  for (const auto& [key, p] : expected) {
    EXPECT_NEAR(observed[key], p, 0.02) << key;
  }
}

TEST(SamplerTest, NodeMapConsistent) {
  Rng rng(5);
  const PDocument pd = paper::PDocPER();
  for (int i = 0; i < 50; ++i) {
    const SampledWorld sw = SampleWorld(pd, rng);
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (sw.pdoc_to_doc[n] == kNullNode) continue;
      EXPECT_EQ(sw.doc.pid(sw.pdoc_to_doc[n]), pd.pid(n));
    }
  }
}

TEST(DocGenTest, ProducesValidDocuments) {
  Rng rng(2024);
  for (int i = 0; i < 20; ++i) {
    DocGenOptions opt;
    opt.target_nodes = 30;
    const PDocument pd = RandomPDocument(rng, opt);
    EXPECT_TRUE(pd.Validate().ok());
    EXPECT_GE(pd.OrdinaryCount(), 1);
  }
}

TEST(DocGenTest, PersonnelShape) {
  Rng rng(9);
  const PDocument pd = PersonnelPDocument(rng, 5);
  EXPECT_TRUE(pd.Validate().ok());
  int persons = 0;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && LabelName(pd.label(n)) == "person") ++persons;
  }
  EXPECT_EQ(persons, 5);
}

// ------------------------------------------------------------- mutation ----

TEST(PDocumentMutationTest, RemoveSubtreeDetachesAndHidesNodes) {
  const auto parsed = ParsePDocument("a(b(c, d), e)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const NodeId b = pd.FindByPid(1);
  ASSERT_NE(b, kNullNode);
  const int before = pd.OrdinaryCount();

  pd.RemoveSubtree(b);
  EXPECT_TRUE(pd.detached(b));
  EXPECT_TRUE(pd.detached(pd.children(b)[0]));  // Whole subtree flagged.
  EXPECT_EQ(pd.OrdinaryCount(), before - 3);
  EXPECT_EQ(pd.FindByPid(1), kNullNode);       // Invisible to pid lookup.
  EXPECT_EQ(pd.children(pd.root()).size(), 1u);
  EXPECT_TRUE(pd.Validate().ok());
  const LabelIndex index(pd);
  EXPECT_TRUE(index.Nodes(Intern("b")).empty());
  EXPECT_EQ(index.Nodes(Intern("e")).size(), 1u);
}

TEST(PDocumentMutationTest, InsertSubtreeCopiesPayload) {
  const auto parsed = ParsePDocument("a(b)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const auto payload = ParsePDocument("x(mux(y@0.25, z@0.5))");
  ASSERT_TRUE(payload.ok());

  const NodeId x = pd.InsertSubtree(pd.root(), *payload, 1.0);
  EXPECT_TRUE(pd.Validate().ok());
  EXPECT_EQ(LabelName(pd.label(x)), "x");
  EXPECT_EQ(pd.parent(x), pd.root());
  ASSERT_EQ(pd.children(x).size(), 1u);
  const NodeId mux = pd.children(x)[0];
  EXPECT_EQ(pd.kind(mux), PKind::kMux);
  ASSERT_EQ(pd.children(mux).size(), 2u);
  EXPECT_DOUBLE_EQ(pd.edge_prob(pd.children(mux)[0]), 0.25);
  // The payload is copied, not referenced: mutating the copy leaves the
  // payload untouched.
  pd.SetEdgeProb(pd.children(mux)[0], 0.1);
  EXPECT_DOUBLE_EQ(payload->edge_prob(2), 0.25);
}

TEST(PDocumentMutationTest, MutationsStampTheSpineOnly) {
  const auto parsed = ParsePDocument("a(b(c), d(e))");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const NodeId b = pd.FindByPid(1);
  const NodeId c = pd.FindByPid(2);
  const NodeId d = pd.FindByPid(3);
  const NodeId e = pd.FindByPid(4);
  const uint64_t vb = pd.version(b), vc = pd.version(c);
  const uint64_t vd = pd.version(d), ve = pd.version(e);
  const uint64_t vroot = pd.version(pd.root());

  pd.SetEdgeProb(e, 1.0);  // Mutation under d.
  EXPECT_NE(pd.version(pd.root()), vroot);  // Spine: root …
  EXPECT_NE(pd.version(d), vd);             // … d …
  EXPECT_NE(pd.version(e), ve);             // … e.
  EXPECT_EQ(pd.version(b), vb);             // Siblings untouched.
  EXPECT_EQ(pd.version(c), vc);
  EXPECT_EQ(pd.dirty_paths().size(), 1u);
  EXPECT_EQ(pd.dirty_paths()[0], e);
}

TEST(PDocumentMutationTest, BatchSharesOneUidAndStamp) {
  const auto parsed = ParsePDocument("a(b(c), d(e))");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const NodeId c = pd.FindByPid(2);
  const NodeId e = pd.FindByPid(4);
  const uint64_t uid_before = pd.uid();
  {
    PDocument::MutationBatch batch(&pd);
    pd.SetEdgeProb(c, 1.0);
    const uint64_t mid = pd.uid();
    pd.SetEdgeProb(e, 1.0);
    EXPECT_EQ(pd.uid(), mid);  // One stamp for the whole batch.
  }
  EXPECT_NE(pd.uid(), uid_before);
  EXPECT_EQ(pd.version(c), pd.version(e));
  EXPECT_EQ(pd.version(c), pd.uid());
  // Unbatched mutations draw fresh stamps again.
  const uint64_t after_batch = pd.uid();
  pd.SetEdgeProb(c, 1.0);
  EXPECT_NE(pd.uid(), after_batch);
}

TEST(PDocumentMutationTest, SetChildOrderReordersSiblings) {
  const auto parsed = ParsePDocument("a(b, c, d)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  const auto kids = pd.children(pd.root());
  ASSERT_EQ(kids.size(), 3u);
  pd.SetChildOrder(pd.root(), {kids[2], kids[0], kids[1]});
  const auto& reordered = pd.children(pd.root());
  EXPECT_EQ(reordered[0], kids[2]);
  EXPECT_EQ(reordered[1], kids[0]);
  EXPECT_EQ(reordered[2], kids[1]);
  EXPECT_TRUE(pd.Validate().ok());
}

TEST(PDocumentMutationTest, WorldsIgnoreDetachedSubtrees) {
  const auto parsed = ParsePDocument("a(ind(b(x)@0.5, z@0.9), c)");
  ASSERT_TRUE(parsed.ok());
  PDocument pd = *parsed;
  NodeId b = kNullNode;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == Intern("b")) b = n;
  }
  pd.RemoveSubtree(b);
  ASSERT_TRUE(pd.Validate().ok());
  // The b(x) subtree no longer tosses a coin: only z's does. Worlds are
  // {a, z, c} at 0.9 and {a, c} at 0.1.
  const auto worlds = EnumerateWorlds(pd, 16);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 2u);
  double with_z = 0, without = 0;
  for (const World& w : *worlds) {
    (w.doc.size() == 3 ? with_z : without) += w.prob;
  }
  EXPECT_DOUBLE_EQ(with_z, 0.9);
  EXPECT_DOUBLE_EQ(without, 0.1);
}

}  // namespace
}  // namespace pxv
