#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "pxml/parser.h"
#include "pxml/pdocument.h"
#include "pxml/sampler.h"
#include "pxml/worlds.h"
#include "xml/canonical.h"
#include "xml/parser.h"

namespace pxv {
namespace {

TEST(PDocumentTest, ValidateAcceptsPaperDocument) {
  const PDocument pd = paper::PDocPER();
  EXPECT_TRUE(pd.Validate().ok());
  EXPECT_EQ(pd.OrdinaryCount(), 21);
}

TEST(PDocumentTest, ValidateRejectsMuxOverflow) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  pd.AddOrdinary(mux, Intern("b"), 0.7);
  pd.AddOrdinary(mux, Intern("c"), 0.6);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, ValidateRejectsDistributionalLeaf) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  pd.AddDistributional(a, PKind::kInd);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, ValidateRejectsBadEdgeProb) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  pd.AddOrdinary(mux, Intern("b"), -0.5);
  EXPECT_FALSE(pd.Validate().ok());
}

TEST(PDocumentTest, OrdinaryAncestorSkipsDistributional) {
  const PDocument pd = paper::PDoc1();
  // The deep c node hangs under b via a mux.
  const NodeId c = pd.FindByPid(3);
  const NodeId b = pd.FindByPid(2);
  ASSERT_NE(c, kNullNode);
  EXPECT_EQ(pd.OrdinaryAncestor(c), b);
}

TEST(PDocumentTest, SubtreeKeepsProbabilities) {
  const PDocument pd = paper::PDocPER();
  const NodeId b5 = pd.FindByPid(5);
  const PDocument sub = pd.Subtree(b5);
  EXPECT_TRUE(sub.Validate().ok());
  // The mux below bonus[5] still carries 0.1 / 0.9.
  double found = 0;
  for (NodeId n = 0; n < sub.size(); ++n) {
    if (sub.ordinary(n) && sub.pid(n) == 24) found = sub.edge_prob(n);
  }
  EXPECT_DOUBLE_EQ(found, 0.9);
}

TEST(PParserTest, RoundTrip) {
  const char* text =
      "a(mux(b(c)@0.25, d@0.5), ind(e@0.75), f)";
  const auto pd = ParsePDocument(text);
  ASSERT_TRUE(pd.ok()) << pd.status().message();
  const auto round = ParsePDocument(ToPText(*pd));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(ToPText(*pd), ToPText(*round));
}

TEST(PParserTest, RejectsRootDistributional) {
  EXPECT_FALSE(ParsePDocument("mux(a@0.5)").ok());
}

TEST(PParserTest, RejectsProbOutsideMuxInd) {
  EXPECT_FALSE(ParsePDocument("a(b@0.5)").ok());
}

TEST(PParserTest, QuotedReservedLabel) {
  const auto pd = ParsePDocument("a(\"mux\")");
  ASSERT_TRUE(pd.ok());
  EXPECT_EQ(pd->OrdinaryCount(), 2);
}

TEST(WorldsTest, ProbabilitiesSumToOne) {
  const PDocument pd = paper::PDocPER();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  double total = 0;
  for (const World& w : *worlds) total += w.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// Example 3: the probability of d_PER among the worlds of P̂_PER is
// 0.75 × 0.9 × 0.7 × 1 × 1 = 0.4725.
TEST(WorldsTest, PaperExample3) {
  const PDocument pd = paper::PDocPER();
  const Document target = paper::DocPER();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  double prob = -1;
  for (const World& w : *worlds) {
    if (EqualWithPids(w.doc, target)) {
      prob = w.prob;
      break;
    }
  }
  EXPECT_NEAR(prob, 0.4725, 1e-12);
}

TEST(WorldsTest, MuxKeepsAtMostOne) {
  const auto pd = ParsePDocument("a(mux(b@0.4, c@0.4))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  // Worlds: {a}, {a,b}, {a,c}.
  EXPECT_EQ(worlds->size(), 3u);
  for (const World& w : *worlds) EXPECT_LE(w.doc.size(), 2);
}

TEST(WorldsTest, IndependentChoices) {
  const auto pd = ParsePDocument("a(ind(b@0.5, c@0.5))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 4u);
  for (const World& w : *worlds) EXPECT_NEAR(w.prob, 0.25, 1e-12);
}

TEST(WorldsTest, DetKeepsAll) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId det = pd.AddDistributional(a, PKind::kDet);
  pd.AddOrdinary(det, Intern("b"));
  pd.AddOrdinary(det, Intern("c"));
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  EXPECT_EQ((*worlds)[0].doc.size(), 3);
}

TEST(WorldsTest, ExpExplicitDistribution) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  // {b,c} w.p. 0.5, {b} w.p. 0.2, {} w.p. 0.3.
  pd.SetExpDistribution(exp, {{{0, 1}, 0.5}, {{0}, 0.2}});
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  std::map<int, double> by_size;
  for (const World& w : *worlds) by_size[w.doc.size()] += w.prob;
  EXPECT_NEAR(by_size[3], 0.5, 1e-12);
  EXPECT_NEAR(by_size[2], 0.2, 1e-12);
  EXPECT_NEAR(by_size[1], 0.3, 1e-12);
}

TEST(WorldsTest, DistributionalNodesSplicedOut) {
  const auto pd = ParsePDocument("a(mux(b(c)@1.0))");
  ASSERT_TRUE(pd.ok());
  const auto worlds = EnumerateWorlds(*pd);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds->size(), 1u);
  const Document& doc = (*worlds)[0].doc;
  // b is a direct child of a.
  EXPECT_EQ(doc.size(), 3);
  EXPECT_EQ(doc.parent(doc.FindByPid(pd->pid(pd->FindByPid(2)))), 0);
}

TEST(AppearanceTest, MatchesEnumeration) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    DocGenOptions opt;
    opt.target_nodes = 12;
    const PDocument pd = RandomPDocument(rng, opt);
    const auto worlds = EnumerateWorlds(pd);
    ASSERT_TRUE(worlds.ok());
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (!pd.ordinary(n)) continue;
      double enumerated = 0;
      for (const World& w : *worlds) {
        if (w.pdoc_to_doc[n] != kNullNode) enumerated += w.prob;
      }
      EXPECT_NEAR(AppearanceProbability(pd, n), enumerated, 1e-9)
          << "node " << n << " trial " << trial;
    }
  }
}

TEST(SamplerTest, ConvergesToWorldDistribution) {
  const PDocument pd = paper::PDoc2();
  const auto worlds = EnumerateWorlds(pd);
  ASSERT_TRUE(worlds.ok());
  std::map<std::string, double> expected;
  for (const World& w : *worlds) {
    expected[CanonicalStringWithPids(w.doc)] += w.prob;
  }
  Rng rng(77);
  std::map<std::string, double> observed;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const SampledWorld sw = SampleWorld(pd, rng);
    observed[CanonicalStringWithPids(sw.doc)] += 1.0 / n;
  }
  for (const auto& [key, p] : expected) {
    EXPECT_NEAR(observed[key], p, 0.02) << key;
  }
}

TEST(SamplerTest, NodeMapConsistent) {
  Rng rng(5);
  const PDocument pd = paper::PDocPER();
  for (int i = 0; i < 50; ++i) {
    const SampledWorld sw = SampleWorld(pd, rng);
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (sw.pdoc_to_doc[n] == kNullNode) continue;
      EXPECT_EQ(sw.doc.pid(sw.pdoc_to_doc[n]), pd.pid(n));
    }
  }
}

TEST(DocGenTest, ProducesValidDocuments) {
  Rng rng(2024);
  for (int i = 0; i < 20; ++i) {
    DocGenOptions opt;
    opt.target_nodes = 30;
    const PDocument pd = RandomPDocument(rng, opt);
    EXPECT_TRUE(pd.Validate().ok());
    EXPECT_GE(pd.OrdinaryCount(), 1);
  }
}

TEST(DocGenTest, PersonnelShape) {
  Rng rng(9);
  const PDocument pd = PersonnelPDocument(rng, 5);
  EXPECT_TRUE(pd.Validate().ok());
  int persons = 0;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && LabelName(pd.label(n)) == "person") ++persons;
  }
  EXPECT_EQ(persons, 5);
}

}  // namespace
}  // namespace pxv
