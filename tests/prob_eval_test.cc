#include <gtest/gtest.h>

#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "gen/querygen.h"
#include "prob/appearance.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "tp/parser.h"

namespace pxv {
namespace {

std::map<PersistentId, double> ByPid(const PDocument& pd,
                                     const std::vector<NodeProb>& results) {
  std::map<PersistentId, double> out;
  for (const NodeProb& np : results) out[pd.pid(np.node)] = np.prob;
  return out;
}

// Example 6: q_BON(P̂_PER) = {(n5, 0.9)}, v1_BON → {(n5, 0.75)},
// q_RBON → {(n5, 0.675)}, v2_BON → {(n5, 1), (n7, 1)}.
TEST(ProbEvalTest, PaperExample6) {
  const PDocument pd = paper::PDocPER();
  const auto qbon = ByPid(pd, EvaluateTP(pd, paper::QueryBON()));
  ASSERT_EQ(qbon.size(), 1u);
  EXPECT_NEAR(qbon.at(5), 0.9, 1e-12);

  const auto v1 = ByPid(pd, EvaluateTP(pd, paper::ViewV1BON()));
  ASSERT_EQ(v1.size(), 1u);
  EXPECT_NEAR(v1.at(5), 0.75, 1e-12);

  const auto qrbon = ByPid(pd, EvaluateTP(pd, paper::QueryRBON()));
  ASSERT_EQ(qrbon.size(), 1u);
  EXPECT_NEAR(qrbon.at(5), 0.9 * 0.75, 1e-12);

  const auto v2 = ByPid(pd, EvaluateTP(pd, paper::ViewV2BON()));
  ASSERT_EQ(v2.size(), 2u);
  EXPECT_NEAR(v2.at(5), 1.0, 1e-12);
  EXPECT_NEAR(v2.at(7), 1.0, 1e-12);
}

TEST(ProbEvalTest, Example11Values) {
  EXPECT_NEAR(SelectionProbability(paper::PDoc1(), paper::Query11(),
                                   paper::PDoc1().FindByPid(2)),
              0.325, 1e-12);
  EXPECT_NEAR(SelectionProbability(paper::PDoc2(), paper::Query11(),
                                   paper::PDoc2().FindByPid(2)),
              0.5, 1e-12);
  EXPECT_NEAR(SelectionProbability(paper::PDoc1(), paper::View11(),
                                   paper::PDoc1().FindByPid(2)),
              0.65, 1e-12);
  EXPECT_NEAR(SelectionProbability(paper::PDoc2(), paper::View11(),
                                   paper::PDoc2().FindByPid(2)),
              0.65, 1e-12);
}

TEST(ProbEvalTest, Example12Values) {
  const PDocument p3 = paper::PDoc3();
  const PDocument p4 = paper::PDoc4();
  const Pattern v = paper::View12();
  const Pattern q = paper::Query12();
  // v selects nc1 with 0.12 and nc2 with 0.24 in both documents.
  const auto v3 = ByPid(p3, EvaluateTP(p3, v));
  const auto v4 = ByPid(p4, EvaluateTP(p4, v));
  ASSERT_EQ(v3.size(), 2u);
  ASSERT_EQ(v4.size(), 2u);
  EXPECT_NEAR(v3.at(paper::kPid12_C2), 0.12, 1e-12);
  EXPECT_NEAR(v3.at(paper::kPid12_C3), 0.24, 1e-12);
  EXPECT_NEAR(v4.at(paper::kPid12_C2), 0.12, 1e-12);
  EXPECT_NEAR(v4.at(paper::kPid12_C3), 0.24, 1e-12);
  // Direct answers differ: 0.288 vs 0.264.
  EXPECT_NEAR(SelectionProbability(p3, q, p3.FindByPid(paper::kPid12_D)),
              0.288, 1e-12);
  EXPECT_NEAR(SelectionProbability(p4, q, p4.FindByPid(paper::kPid12_D)),
              0.264, 1e-12);
}

TEST(ProbEvalTest, BooleanProbability) {
  const PDocument pd = paper::PDocPER();
  EXPECT_NEAR(BooleanProbability(pd, Tp("IT-personnel//laptop")), 0.9, 1e-12);
  EXPECT_NEAR(BooleanProbability(pd, Tp("IT-personnel//Rick")), 0.75, 1e-12);
  EXPECT_NEAR(BooleanProbability(pd, Tp("IT-personnel//person")), 1.0, 1e-12);
  EXPECT_NEAR(BooleanProbability(pd, Tp("IT-personnel//nothing")), 0.0,
              1e-12);
}

TEST(ProbEvalTest, AnchoredAnyOfMatchesUnion) {
  // Selecting "either of the two bonus nodes" equals 1 (both certain).
  const PDocument pd = paper::PDocPER();
  const Pattern q = paper::ViewV2BON();
  std::vector<NodeId> anchor{pd.FindByPid(5), pd.FindByPid(7)};
  EXPECT_NEAR(SelectionProbabilityAnyOf(pd, q, anchor), 1.0, 1e-12);
}

TEST(ProbEvalTest, JointProbabilityConjunction) {
  // Joint: Rick chosen AND laptop chosen = 0.75 × 0.9 (independent muxes).
  const PDocument pd = paper::PDocPER();
  const Pattern q1 = Tp("IT-personnel//Rick");
  const Pattern q2 = Tp("IT-personnel//laptop");
  EXPECT_NEAR(JointProbability(pd, {{&q1, nullptr}, {&q2, nullptr}}),
              0.75 * 0.9, 1e-12);
}

TEST(ProbEvalTest, JointProbabilityMutuallyExclusive) {
  // Rick and John are mux alternatives: joint probability 0.
  const PDocument pd = paper::PDocPER();
  const Pattern q1 = Tp("IT-personnel//Rick");
  const Pattern q2 = Tp("IT-personnel//John");
  EXPECT_NEAR(JointProbability(pd, {{&q1, nullptr}, {&q2, nullptr}}), 0.0,
              1e-12);
}

TEST(ProbEvalTest, AppearanceOnPaperDocuments) {
  const PDocument pd = paper::PDocPER();
  EXPECT_NEAR(NodeAppearanceProbability(pd, pd.FindByPid(8)), 0.75, 1e-12);
  EXPECT_NEAR(NodeAppearanceProbability(pd, pd.FindByPid(24)), 0.9, 1e-12);
  EXPECT_NEAR(NodeAppearanceProbability(pd, pd.FindByPid(54)), 0.7, 1e-12);
  EXPECT_NEAR(NodeAppearanceProbability(pd, pd.FindByPid(5)), 1.0, 1e-12);
}

// Property: the DP engine agrees with possible-world enumeration on random
// p-documents and random queries.
class EngineVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(EngineVsOracle, TPAgrees) {
  Rng rng(1000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 14;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2 + GetParam() % 3;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = RandomQuery(rng, qo);
  const auto naive = NaiveEvaluateTP(pd, q);
  const auto fast = EvaluateTP(pd, q);
  std::map<NodeId, double> fast_map;
  for (const NodeProb& np : fast) fast_map[np.node] = np.prob;
  for (const auto& [n, p] : naive) {
    if (p < 1e-12) continue;
    ASSERT_TRUE(fast_map.count(n)) << "node " << n;
    EXPECT_NEAR(fast_map[n], p, 1e-9);
  }
  for (const auto& [n, p] : fast_map) {
    const double expected = naive.count(n) ? naive.at(n) : 0.0;
    EXPECT_NEAR(p, expected, 1e-9);
  }
}

TEST_P(EngineVsOracle, TPIAgrees) {
  Rng rng(5000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 12;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  TpIntersection q({RandomQuery(rng, qo), RandomQuery(rng, qo)});
  // Members must share the output label for the intersection to be
  // meaningful; skip mismatched draws.
  if (q.members()[0].OutLabel() != q.members()[1].OutLabel()) return;
  const auto naive = NaiveEvaluateTPI(pd, q);
  std::map<NodeId, double> fast_map;
  for (const NodeProb& np : EvaluateTPI(pd, q)) fast_map[np.node] = np.prob;
  for (const auto& [n, p] : naive) {
    if (p < 1e-12) continue;
    EXPECT_NEAR(fast_map[n], p, 1e-9);
  }
  for (const auto& [n, p] : fast_map) {
    const double expected = naive.count(n) ? naive.at(n) : 0.0;
    EXPECT_NEAR(p, expected, 1e-9);
  }
}

TEST_P(EngineVsOracle, BooleanAgrees) {
  Rng rng(9000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 14;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 3;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = RandomQuery(rng, qo);
  EXPECT_NEAR(BooleanProbability(pd, q), NaiveBooleanProbability(pd, q),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineVsOracle, ::testing::Range(0, 30));

TEST(ProbEvalTest, ExpNodesSupported) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  pd.SetExpDistribution(exp, {{{0, 1}, 0.4}, {{0}, 0.3}});
  // b appears with 0.7, c with 0.4, both with 0.4 (correlated!).
  const Pattern qb = Tp("a/b");
  const Pattern qc = Tp("a/c");
  EXPECT_NEAR(BooleanProbability(pd, qb), 0.7, 1e-12);
  EXPECT_NEAR(BooleanProbability(pd, qc), 0.4, 1e-12);
  EXPECT_NEAR(JointProbability(pd, {{&qb, nullptr}, {&qc, nullptr}}), 0.4,
              1e-12);
}

}  // namespace
}  // namespace pxv
