// Randomized equivalence suite for the batched single-pass anchored engine:
// BatchSelectionProbabilities / BatchAnchoredProbabilities must agree with
// (a) the per-candidate SelectionProbability loop and (b) the naive
// possible-world oracle, on random p-documents and random queries.

#include <gtest/gtest.h>

#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "gen/querygen.h"
#include "prob/engine.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

std::map<NodeId, double> ByNode(const std::vector<NodeProb>& results) {
  std::map<NodeId, double> out;
  for (const NodeProb& np : results) out[np.node] = np.prob;
  return out;
}

// The per-candidate reference: one anchored DP run per label-matching node.
std::map<NodeId, double> PerCandidateLoop(const PDocument& pd,
                                          const Pattern& q) {
  std::map<NodeId, double> out;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.label(n) != q.OutLabel()) continue;
    const double p = SelectionProbability(pd, q, n);
    if (p > 1e-12) out[n] = p;
  }
  return out;
}

void ExpectSameMap(const std::map<NodeId, double>& expected,
                   const std::map<NodeId, double>& actual, double tol) {
  for (const auto& [n, p] : expected) {
    if (p < 1e-12) continue;
    ASSERT_TRUE(actual.count(n)) << "missing node " << n;
    EXPECT_NEAR(actual.at(n), p, tol) << "node " << n;
  }
  for (const auto& [n, p] : actual) {
    const double e = expected.count(n) ? expected.at(n) : 0.0;
    EXPECT_NEAR(p, e, tol) << "extra mass at node " << n;
  }
}

TEST(BatchEvalTest, PaperExample6) {
  const PDocument pd = paper::PDocPER();
  const auto batch = ByNode(BatchSelectionProbabilities(pd, paper::QueryBON()));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_NEAR(batch.begin()->second, 0.9, 1e-12);
  ExpectSameMap(PerCandidateLoop(pd, paper::QueryBON()), batch, 1e-12);
  ExpectSameMap(PerCandidateLoop(pd, paper::ViewV1BON()),
                ByNode(BatchSelectionProbabilities(pd, paper::ViewV1BON())),
                1e-12);
  ExpectSameMap(PerCandidateLoop(pd, paper::ViewV2BON()),
                ByNode(BatchSelectionProbabilities(pd, paper::ViewV2BON())),
                1e-12);
}

TEST(BatchEvalTest, OutAtRootSelectsOnlyRoot) {
  const PDocument pd = paper::PDocPER();
  Pattern q;  // "IT-personnel[person]" with out at the root.
  const PNodeId r = q.AddRoot(Intern("IT-personnel"));
  q.AddChild(r, Intern("person"), Axis::kDescendant);
  q.SetOut(r);
  const auto batch = ByNode(BatchSelectionProbabilities(pd, q));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.begin()->first, pd.root());
  EXPECT_NEAR(batch.begin()->second, 1.0, 1e-12);
}

TEST(BatchEvalTest, MismatchedOutLabelsYieldEmpty) {
  const PDocument pd = paper::PDocPER();
  const Pattern a = Tp("IT-personnel//person");
  const Pattern b = Tp("IT-personnel//bonus");
  EXPECT_TRUE(BatchAnchoredProbabilities(pd, {&a, &b}).empty());
}

// det and exp regions (not produced by docgen): candidates behind a det
// group, inside correlated exp subsets, and under an ind edge.
TEST(BatchEvalTest, DetAndExpRegions) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId det = pd.AddDistributional(a, PKind::kDet);
  const NodeId b1 = pd.AddOrdinary(det, Intern("b"));
  pd.AddOrdinary(b1, Intern("d"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  pd.SetExpDistribution(exp, {{{0, 1}, 0.4}, {{0}, 0.3}});
  const NodeId ind = pd.AddDistributional(a, PKind::kInd);
  const NodeId b3 = pd.AddOrdinary(ind, Intern("b"), 0.6);
  pd.AddOrdinary(b3, Intern("d"));
  ASSERT_TRUE(pd.Validate().ok());

  for (const char* qs : {"a//b", "a/b", "a//b[d]", "a[c]//b"}) {
    const Pattern q = Tp(qs);
    const auto batch = ByNode(BatchSelectionProbabilities(pd, q));
    ExpectSameMap(PerCandidateLoop(pd, q), batch, 1e-12);
    std::map<NodeId, double> naive;
    for (const auto& [n, p] : NaiveEvaluateTP(pd, q)) {
      if (p > 1e-12) naive[n] = p;
    }
    ExpectSameMap(naive, batch, 1e-12);
  }
}

// ~100 random instances: batch vs per-candidate loop vs naive oracle.
class BatchVsLoopVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(BatchVsLoopVsOracle, TPAgrees) {
  Rng rng(3000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 14;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2 + GetParam() % 3;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = RandomQuery(rng, qo);
  const auto batch = ByNode(BatchSelectionProbabilities(pd, q));
  ExpectSameMap(PerCandidateLoop(pd, q), batch, 1e-9);
  std::map<NodeId, double> naive;
  for (const auto& [n, p] : NaiveEvaluateTP(pd, q)) {
    if (p > 1e-12) naive[n] = p;
  }
  ExpectSameMap(naive, batch, 1e-9);
}

TEST_P(BatchVsLoopVsOracle, TPIAgrees) {
  Rng rng(4000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 12;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 2;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  TpIntersection q({RandomQuery(rng, qo), RandomQuery(rng, qo)});
  if (q.members()[0].OutLabel() != q.members()[1].OutLabel()) return;
  const auto batch = ByNode(
      BatchAnchoredProbabilities(pd, {&q.members()[0], &q.members()[1]}));
  // Per-candidate anchored conjunction loop.
  std::map<NodeId, double> loop;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.label(n) != q.members()[0].OutLabel()) continue;
    std::vector<NodeId> anchor{n};
    std::vector<Goal> goals;
    for (const Pattern& m : q.members()) goals.push_back({&m, &anchor});
    const double p = ConjunctionProbability(pd, goals);
    if (p > 1e-12) loop[n] = p;
  }
  ExpectSameMap(loop, batch, 1e-9);
  std::map<NodeId, double> naive;
  for (const auto& [n, p] : NaiveEvaluateTPI(pd, q)) {
    if (p > 1e-12) naive[n] = p;
  }
  ExpectSameMap(naive, batch, 1e-9);
}

// Larger documents (beyond the oracle's reach): batch vs loop only.
TEST_P(BatchVsLoopVsOracle, TPAgreesOnLargerDocs) {
  if (GetParam() >= 10) return;  // Ten heavier instances suffice.
  Rng rng(6000 + GetParam());
  DocGenOptions d;
  d.target_nodes = 120;
  d.label_count = 3;
  QueryGenOptions qo;
  qo.depth = 3;
  qo.label_count = 3;
  const PDocument pd = RandomPDocument(rng, d);
  const Pattern q = RandomQuery(rng, qo);
  ExpectSameMap(PerCandidateLoop(pd, q),
                ByNode(BatchSelectionProbabilities(pd, q)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchVsLoopVsOracle, ::testing::Range(0, 50));

}  // namespace
}  // namespace pxv
