// Lineage-circuit equivalence suite (prob/circuit.h,
// prob/circuit_backend.h).
//
// The contract under test: CircuitBackend's answers are *bit-identical* to
// ExactDpBackend's in every regime — cold compiles, probability-only churn
// served by value re-propagation (with zero recompiles while no guard
// flips), guard flips, structural mutations and exp-distribution reshapes
// (all of which must fall back to a recompile, still bit-identical) — plus
// a finite-difference check of the backward pass's gradients.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/querygen.h"
#include "prob/backend.h"
#include "prob/circuit_backend.h"
#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

void ExpectBitwiseEqual(const std::vector<NodeProb>& got,
                        const std::vector<NodeProb>& want,
                        const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << context << " entry " << i;
    EXPECT_EQ(Bits(got[i].prob), Bits(want[i].prob))
        << context << " node " << got[i].node << ": " << got[i].prob
        << " vs " << want[i].prob;
  }
}

double ProbOf(const std::vector<NodeProb>& results, NodeId n) {
  for (const NodeProb& np : results) {
    if (np.node == n) return np.prob;
  }
  return 0.0;
}

// ------------------------------------------------------- document gen ----

// Labels stratified by ordinary depth (see incremental_test.cc): a label
// never nests under itself, and the alphabet matches RandomQuery's.
Label StratLabel(int ordinary_depth) {
  return Intern("l" + std::to_string(ordinary_depth - 1));
}

// A probability that can never sit on a guard boundary: strictly inside
// (0, 1), and when `ways` siblings each draw one, their total stays < 0.9.
double SafeProb(Rng& rng, int ways) {
  return (0.05 + 0.8 * rng.NextDouble()) / ways;
}

void GrowGuardStable(PDocument* pd, NodeId parent, int odepth, int* budget,
                     Rng& rng) {
  if (*budget <= 0 || odepth > 4) return;
  const int fanout = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < fanout && *budget > 0; ++i) {
    const Label l = StratLabel(odepth);
    if (rng.NextBool(0.35)) {
      const PKind kind = rng.NextBool(0.5) ? PKind::kMux : PKind::kInd;
      const NodeId dist = pd->AddDistributional(parent, kind);
      const int alts = 1 + static_cast<int>(rng.NextBounded(2));
      for (int a = 0; a < alts; ++a) {
        const NodeId c = pd->AddOrdinary(
            dist, l, kind == PKind::kMux ? SafeProb(rng, alts)
                                         : 0.05 + 0.9 * rng.NextDouble());
        --*budget;
        GrowGuardStable(pd, c, odepth + 1, budget, rng);
      }
    } else {
      const NodeId c = pd->AddOrdinary(parent, l);
      --*budget;
      GrowGuardStable(pd, c, odepth + 1, budget, rng);
    }
  }
}

// Random stratified document whose probabilities all sit strictly inside
// (0, 1) with strictly sub-unit mux/exp totals — the regime where
// probability-only churn (which preserves those properties, see
// ChurnProbabilities) can never flip a recorded guard.
PDocument RandomGuardStableDoc(Rng& rng, int target_nodes, int exp_nodes) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  int budget = target_nodes;
  GrowGuardStable(&pd, root, 1, &budget, rng);
  while (pd.children(root).empty()) pd.AddOrdinary(root, StratLabel(1));
  std::vector<NodeId> ordinary;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n)) ordinary.push_back(n);
  }
  for (int e = 0; e < exp_nodes; ++e) {
    const NodeId host = ordinary[rng.NextBounded(ordinary.size())];
    int odepth = 1;
    for (NodeId a = pd.OrdinaryAncestor(host); a != kNullNode;
         a = pd.OrdinaryAncestor(a)) {
      ++odepth;
    }
    const NodeId exp = pd.AddExp(host);
    const int kids = 2 + static_cast<int>(rng.NextBounded(2));
    for (int k = 0; k < kids; ++k) {
      pd.AddOrdinary(exp, StratLabel(std::min(odepth + 1, 4)));
    }
    const int subsets = 2 + static_cast<int>(rng.NextBounded(2));
    std::vector<std::pair<std::vector<int>, double>> dist;
    for (int s = 0; s < subsets; ++s) {
      std::vector<int> subset;
      for (int k = 0; k < kids; ++k) {
        if (rng.NextBool(0.6)) subset.push_back(k);
      }
      dist.emplace_back(std::move(subset), SafeProb(rng, subsets));
    }
    pd.SetExpDistribution(exp, std::move(dist));
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

// Probability-only churn that keeps every recorded guard on its side: new
// values stay strictly inside (0, 1) with sub-unit totals, and exp subset
// *structures* are preserved (only the probabilities move).
void ChurnProbabilities(PDocument* pd, Rng& rng, double touch_prob = 0.5) {
  for (NodeId n = 0; n < pd->size(); ++n) {
    if (pd->ordinary(n)) continue;
    switch (pd->kind(n)) {
      case PKind::kMux: {
        const int kids = static_cast<int>(pd->children(n).size());
        for (NodeId c : pd->children(n)) {
          if (rng.NextBool(touch_prob)) {
            pd->SetEdgeProb(c, SafeProb(rng, kids));
          }
        }
        break;
      }
      case PKind::kInd:
        for (NodeId c : pd->children(n)) {
          if (rng.NextBool(touch_prob)) {
            pd->SetEdgeProb(c, 0.05 + 0.9 * rng.NextDouble());
          }
        }
        break;
      case PKind::kExp: {
        if (!rng.NextBool(touch_prob)) break;
        auto dist = pd->exp_distribution(n);
        const int subsets = static_cast<int>(dist.size());
        for (auto& [subset, p] : dist) p = SafeProb(rng, subsets);
        pd->SetExpDistribution(n, std::move(dist));
        break;
      }
      default:
        break;
    }
  }
  pd->ClearDirtyPaths();
}

std::vector<NodeProb> MustBatch(ProbBackend* b, const PDocument& pd,
                                const std::vector<const Pattern*>& members) {
  StatusOr<std::vector<NodeProb>> r = b->BatchAnchored(pd, members);
  PXV_CHECK(r.ok()) << r.status().message();
  return *std::move(r);
}

// ------------------------------------------------------- equivalence ----

TEST(CircuitTest, RandomizedColdEquivalence) {
  for (int seed = 0; seed < 32; ++seed) {
    Rng rng(7100 + seed);
    const PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    const Pattern q = RandomQuery(rng);
    CircuitBackend circuit;
    ExactDpBackend exact;
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}),
                       ("seed " + std::to_string(seed)).c_str());
    EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
    EXPECT_GT(circuit.profile().circuit_gates, 0u);
  }
}

TEST(CircuitTest, ProbabilityChurnBitwise) {
  // Random documents may contain probabilistic subtrees irrelevant to the
  // query; their Combine unit-drop guard sits on "mass == 1.0 exactly",
  // which an FP sum like (1-p)+p crosses for some values and not others —
  // so churn may legitimately force a recompile. The contract under test is
  // that every serve (propagated or recompiled) stays bit-identical, and
  // that propagation does the bulk of the work across the suite.
  uint64_t propagated_serves = 0, total_serves = 0;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(7200 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    const Pattern q = RandomQuery(rng);
    CircuitBackend circuit;
    ExactDpBackend exact;
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}), "cold");
    for (int round = 0; round < 4; ++round) {
      ChurnProbabilities(&pd, rng);
      ExpectBitwiseEqual(
          MustBatch(&circuit, pd, {&q}), MustBatch(&exact, pd, {&q}),
          ("seed " + std::to_string(seed) + " round " + std::to_string(round))
              .c_str());
      ++total_serves;
    }
    propagated_serves += 1 + 4 - circuit.profile().circuit_recompiles;
  }
  EXPECT_GT(propagated_serves, total_serves / 2);
}

TEST(CircuitTest, RelevantDocChurnNeverRecompiles) {
  // When every probabilistic subtree is query-relevant (the delta-serving
  // workload the backend targets), no unit distribution ever reaches a
  // Combine drop site, so probability churn is served by pure value
  // re-propagation: one cold compile, zero rebuilds.
  Rng rng(7250);
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  std::vector<NodeId> items;
  for (int i = 0; i < 200; ++i) {
    const NodeId ind = pd.AddDistributional(a, PKind::kInd);
    const NodeId b = pd.AddOrdinary(ind, Intern("b"),
                                    0.05 + 0.9 * rng.NextDouble());
    const NodeId ind2 = pd.AddDistributional(b, PKind::kInd);
    const NodeId c = pd.AddOrdinary(ind2, Intern("c"),
                                    0.05 + 0.9 * rng.NextDouble());
    items.push_back(b);
    items.push_back(c);
  }
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b[c]");
  CircuitBackend circuit;
  ExactDpBackend exact;
  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      for (int k = 0; k < 25; ++k) {
        pd.SetEdgeProb(items[rng.NextBounded(items.size())],
                       0.05 + 0.9 * rng.NextDouble());
      }
      pd.ClearDirtyPaths();
    }
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}),
                       ("round " + std::to_string(round)).c_str());
  }
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
  EXPECT_GT(circuit.profile().circuit_dirty_gates, 0u);
}

TEST(CircuitTest, ManyModeChurnEquivalence) {
  const Pattern q1 = Tp("root//l1");
  const Pattern q2 = Tp("root/l0/l1");
  const Pattern q3 = Tp("root//l0/l1[l2]");
  const std::vector<const Pattern*> members{&q1, &q2, &q3};
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(7300 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    CircuitBackend circuit;
    ExactDpBackend exact;
    for (int round = 0; round < 4; ++round) {
      if (round > 0) ChurnProbabilities(&pd, rng);
      StatusOr<std::vector<std::vector<NodeProb>>> got =
          circuit.BatchAnchoredMany(pd, members);
      StatusOr<std::vector<std::vector<NodeProb>>> want =
          exact.BatchAnchoredMany(pd, members);
      ASSERT_TRUE(got.ok() && want.ok());
      ASSERT_EQ(got->size(), want->size());
      for (size_t i = 0; i < got->size(); ++i) {
        ExpectBitwiseEqual((*got)[i], (*want)[i], "many");
      }
    }
    // Unit-drop guard flips may force recompiles on random documents (see
    // ProbabilityChurnBitwise); bitwise identity is the invariant.
    EXPECT_LE(circuit.profile().circuit_recompiles, 4u) << "seed " << seed;
  }
}

TEST(CircuitTest, WideKeyRegimeEquivalence) {
  // Ten members of 4-5 nodes each push the joint pass past kNarrowSlotCap
  // (32 slots), exercising the 256-bit wide-key algebra under recording.
  std::vector<Pattern> queries;
  queries.push_back(Tp("root/l0/l1/l2"));
  queries.push_back(Tp("root//l2"));
  queries.push_back(Tp("root//l1/l2"));
  queries.push_back(Tp("root/l0//l2[l3]"));
  queries.push_back(Tp("root//l0/l1[l2]/l2"));
  queries.push_back(Tp("root//l0//l2"));
  queries.push_back(Tp("root/l0[l1]/l1/l2"));
  queries.push_back(Tp("root//l1[l2]/l2"));
  queries.push_back(Tp("root//l0[.//l3]//l2"));
  queries.push_back(Tp("root/l0/l1[l2]//l2"));
  std::vector<const Pattern*> members;
  for (const Pattern& q : queries) members.push_back(&q);
  ASSERT_GT(BatchSlotCount(members), kNarrowSlotCap);

  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(7400 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 80, 2);
    CircuitBackend circuit;
    ExactDpBackend exact;
    for (int round = 0; round < 3; ++round) {
      if (round > 0) ChurnProbabilities(&pd, rng);
      StatusOr<std::vector<std::vector<NodeProb>>> got =
          circuit.BatchAnchoredMany(pd, members);
      StatusOr<std::vector<std::vector<NodeProb>>> want =
          exact.BatchAnchoredMany(pd, members);
      ASSERT_TRUE(got.ok() && want.ok());
      for (size_t i = 0; i < got->size(); ++i) {
        ExpectBitwiseEqual((*got)[i], (*want)[i], "wide");
      }
    }
    EXPECT_EQ(circuit.profile().circuit_recompiles, 1u) << "seed " << seed;
  }
}

TEST(CircuitTest, DeepChainChurn) {
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  std::vector<NodeId> chain;
  for (int i = 0; i < 600; ++i) {
    const NodeId mux = pd.AddDistributional(cur, PKind::kMux);
    cur = pd.AddOrdinary(mux, Intern("m"), 0.999);
    chain.push_back(cur);
  }
  pd.AddOrdinary(cur, Intern("z"));
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a//z");
  CircuitBackend circuit;
  ExactDpBackend exact;
  Rng rng(7500);
  for (int round = 0; round < 4; ++round) {
    if (round > 0) {
      for (int k = 0; k < 20; ++k) {
        pd.SetEdgeProb(chain[rng.NextBounded(chain.size())],
                       0.5 + 0.45 * rng.NextDouble());
      }
      pd.ClearDirtyPaths();
    }
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}), "deep chain");
  }
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
}

// ------------------------------------------------------- fallbacks ----

TEST(CircuitTest, GuardFlipForcesRecompile) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  const NodeId b1 = pd.AddOrdinary(mux, Intern("b"), 0.3);
  pd.AddOrdinary(mux, Intern("b"), 0.4);
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // p → 0 flips the recorded kIsZero guard: the engine would now skip this
  // alternative entirely, so the circuit must rebuild — and still match.
  pd.SetEdgeProb(b1, 0.0);
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after flip");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
  // And back into the open interval: another flip, another rebuild.
  pd.SetEdgeProb(b1, 0.25);
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after unflip");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 3u);
}

TEST(CircuitTest, StructuralMutationRecompiles) {
  Rng rng(7600);
  PDocument pd = RandomGuardStableDoc(rng, 40, 1);
  const Pattern q = Tp("root//l1");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // A structural mutation moves structure_version: recompile-on-demand.
  pd.AddOrdinary(pd.root(), StratLabel(1));
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after insert");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
}

TEST(CircuitTest, ExpReshapeForcesRecompile) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  pd.AddOrdinary(exp, Intern("d"));
  pd.SetExpDistribution(exp, {{{0, 1}, 0.3}, {{1, 2}, 0.2}});
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // Same subset count, different membership: structure_version does not
  // move, but the recorded exp signature must catch the reshape.
  pd.SetExpDistribution(exp, {{{0}, 0.3}, {{1, 2}, 0.2}});
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after reshape");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
}

TEST(CircuitTest, UidFastPathSkipsPropagation) {
  Rng rng(7700);
  const PDocument pd = RandomGuardStableDoc(rng, 50, 1);
  const Pattern q = RandomQuery(rng);
  CircuitBackend circuit;
  const std::vector<NodeProb> first = MustBatch(&circuit, pd, {&q});
  const uint64_t dirty = circuit.profile().circuit_dirty_gates;
  const std::vector<NodeProb> second = MustBatch(&circuit, pd, {&q});
  ExpectBitwiseEqual(second, first, "replay");
  // No mutation between the serves: the replay must not even diff inputs.
  EXPECT_EQ(circuit.profile().circuit_dirty_gates, dirty);
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
}

TEST(CircuitTest, GateCapFallsBackToPlainDp) {
  Rng rng(7800);
  const PDocument pd = RandomGuardStableDoc(rng, 60, 2);
  const Pattern q = RandomQuery(rng);
  CircuitBackendOptions options;
  options.max_gates = 8;  // Far below any real recording.
  CircuitBackend circuit(options);
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "over cap");
  EXPECT_EQ(circuit.cached_circuits(), 1u);  // Entry exists, banned.
  EXPECT_EQ(circuit.profile().circuit_gates, 0u);  // Rolled back, kept none.
  EXPECT_EQ(circuit.shared_stats().registrations, 0u);
  // Every call pays a plain DP pass; nothing registers on the pool.
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "over cap again");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
  StatusOr<std::vector<LineageCircuit::Sensitivity>> sens =
      circuit.Sensitivities(pd, {&q}, NodeId{1});
  EXPECT_FALSE(sens.ok());
}

// ------------------------------------------------------- gradients ----

TEST(CircuitTest, FiniteDifferenceGradient) {
  Rng rng(7900);
  PDocument pd = RandomGuardStableDoc(rng, 40, 2);
  const Pattern q = Tp("root//l1");
  CircuitBackend circuit;
  ExactDpBackend exact;
  const std::vector<NodeProb> answers = MustBatch(&circuit, pd, {&q});
  ASSERT_FALSE(answers.empty());
  const NodeId target = answers.front().node;

  StatusOr<std::vector<LineageCircuit::Sensitivity>> sens =
      circuit.Sensitivities(pd, {&q}, target);
  ASSERT_TRUE(sens.ok());
  ASSERT_FALSE(sens->empty());
  // Descending |grad| ordering.
  for (size_t i = 1; i < sens->size(); ++i) {
    EXPECT_GE(std::fabs((*sens)[i - 1].grad), std::fabs((*sens)[i].grad));
  }

  const double h = 1e-6;
  int checked = 0;
  for (const LineageCircuit::Sensitivity& s : *sens) {
    if (checked >= 12) break;
    ++checked;
    double plus, minus;
    if (s.input.kind == CircuitInput::Kind::kEdgeProb) {
      const double saved = pd.edge_prob(s.input.node);
      EXPECT_EQ(Bits(s.value), Bits(saved));
      pd.SetEdgeProb(s.input.node, saved + h);
      plus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      pd.SetEdgeProb(s.input.node, saved - h);
      minus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      pd.SetEdgeProb(s.input.node, saved);
    } else {
      auto dist = pd.exp_distribution(s.input.node);
      const double saved = dist[size_t(s.input.index)].second;
      EXPECT_EQ(Bits(s.value), Bits(saved));
      dist[size_t(s.input.index)].second = saved + h;
      pd.SetExpDistribution(s.input.node, dist);
      plus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      dist[size_t(s.input.index)].second = saved - h;
      pd.SetExpDistribution(s.input.node, dist);
      minus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      dist[size_t(s.input.index)].second = saved;
      pd.SetExpDistribution(s.input.node, dist);
    }
    pd.ClearDirtyPaths();
    EXPECT_NEAR(s.grad, (plus - minus) / (2 * h), 1e-6)
        << "input node " << s.input.node;
  }
}

// ------------------------------------------------------- EvalSession ----

TEST(CircuitTest, EvalSessionCircuitBackend) {
  Rng rng(8000);
  PDocument pd = RandomGuardStableDoc(rng, 60, 2);
  const Pattern q = RandomQuery(rng);

  EvalOptions circuit_options;
  circuit_options.backend = BackendKind::kCircuit;
  EvalSession circuit_session(pd, circuit_options);
  EvalSession exact_session(pd, {});

  for (int round = 0; round < 3; ++round) {
    if (round > 0) ChurnProbabilities(&pd, rng);
    const std::vector<NodeProb> got = circuit_session.EvaluateTP(q);
    ExpectBitwiseEqual(got, exact_session.EvaluateTP(q), "session");
    EXPECT_STREQ(circuit_session.last_backend(), "circuit");
  }
  ASSERT_NE(circuit_session.dp_profile(), nullptr);
  EXPECT_EQ(circuit_session.dp_profile()->circuit_recompiles, 1u);

  const std::vector<NodeProb> answers = circuit_session.EvaluateTP(q);
  if (!answers.empty()) {
    const std::vector<LineageCircuit::Sensitivity> sens =
        circuit_session.Sensitivities(q, answers.front().node);
    EXPECT_FALSE(sens.empty());
  }
}

// ------------------------------------------------------- shared pool ----
//
// Cross-query sharing: many registrations on ONE CircuitBackend consing
// into one gate pool, every root still bit-identical both to ExactDpBackend
// and to a fresh single-query CircuitBackend, with per-query fallback
// isolation (a guard flip, reshape, or gate-cap ban on one query must not
// knock the others off the shared circuit).

// Flips child 0's membership in the first reshapable exp subset: the subset
// count is unchanged (so probability-only churn detection would miss it)
// but the structure signature must move.
bool ReshapeOneExp(PDocument* pd) {
  for (NodeId n = 0; n < pd->size(); ++n) {
    if (pd->ordinary(n) || pd->kind(n) != PKind::kExp) continue;
    auto dist = pd->exp_distribution(n);
    if (dist.empty()) continue;
    std::vector<int>& subset = dist[0].first;
    auto it = std::find(subset.begin(), subset.end(), 0);
    if (it != subset.end() && subset.size() > 1) {
      subset.erase(it);
    } else if (it == subset.end()) {
      subset.insert(subset.begin(), 0);
    } else {
      continue;  // Singleton {0}: erasing would empty the subset.
    }
    pd->SetExpDistribution(n, std::move(dist));
    pd->ClearDirtyPaths();
    return true;
  }
  return false;
}

TEST(CircuitTest, SharedOverlappingQueriesChurn) {
  // 8-32 random overlapping queries on one shared backend, driven through
  // probability churn, a structural insert, and an exp reshape. Every serve
  // must match ExactDpBackend AND a fresh per-query CircuitBackend bitwise
  // — cross-query consing must never change a single bit.
  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(8100 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 70, 2);
    const int nq = 8 + static_cast<int>(rng.NextBounded(25));
    std::vector<Pattern> queries;
    queries.reserve(size_t(nq));
    for (int i = 0; i < nq; ++i) queries.push_back(RandomQuery(rng));
    CircuitBackend shared;
    ExactDpBackend exact;
    for (int round = 0; round < 4; ++round) {
      if (round == 1) {
        pd.AddOrdinary(pd.root(), StratLabel(1));  // Structural fallback.
        pd.ClearDirtyPaths();
      } else if (round == 3) {
        ASSERT_TRUE(ReshapeOneExp(&pd));  // Exp-reshape fallback.
      } else if (round > 0) {
        ChurnProbabilities(&pd, rng);
      }
      for (int i = 0; i < nq; ++i) {
        const std::string ctx = "seed " + std::to_string(seed) + " round " +
                                std::to_string(round) + " q" +
                                std::to_string(i);
        const std::vector<NodeProb> got =
            MustBatch(&shared, pd, {&queries[i]});
        ExpectBitwiseEqual(got, MustBatch(&exact, pd, {&queries[i]}),
                           (ctx + " vs exact").c_str());
        CircuitBackend fresh;
        ExpectBitwiseEqual(got, MustBatch(&fresh, pd, {&queries[i]}),
                           (ctx + " vs fresh").c_str());
      }
    }
    EXPECT_GT(shared.shared_stats().registrations, 0u) << "seed " << seed;
    EXPECT_GT(shared.profile().circuit_merged_propagations, 0u);
  }
}

TEST(CircuitTest, SharedGatesSinglePassMergedDelta) {
  // The standing-query workload: 16 queries differing only in their output
  // label over one high-fanout spine. The 128-item sibling-product machinery
  // compiles once and is shared by every registration; a delta then costs
  // ONE merged propagation that re-serves all 16 roots.
  Rng rng(8200);
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId ind = pd.AddDistributional(a, PKind::kInd);
  std::vector<NodeId> items;
  for (int i = 0; i < 128; ++i) {
    items.push_back(
        pd.AddOrdinary(ind, Intern("item"), 0.05 + 0.9 * rng.NextDouble()));
  }
  for (int k = 0; k < 16; ++k) {
    pd.AddOrdinary(ind, Intern("out" + std::to_string(k)), 0.5);
  }
  pd.ClearDirtyPaths();
  std::vector<Pattern> queries;
  for (int k = 0; k < 16; ++k) {
    queries.push_back(Tp("a[item]/out" + std::to_string(k)));
  }
  CircuitBackend shared;
  ExactDpBackend exact;
  for (int k = 0; k < 16; ++k) {
    ExpectBitwiseEqual(MustBatch(&shared, pd, {&queries[k]}),
                       MustBatch(&exact, pd, {&queries[k]}), "cold");
  }
  const LineageCircuit::Stats cold = shared.shared_stats();
  EXPECT_EQ(cold.registrations, 16u);
  EXPECT_EQ(cold.roots, 16u);
  EXPECT_GE(cold.shared_gates, cold.private_gates);  // Spine dominates.
  EXPECT_EQ(shared.profile().circuit_recompiles, 16u);

  const uint64_t merged = shared.profile().circuit_merged_propagations;
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 5; ++k) {
      pd.SetEdgeProb(items[rng.NextBounded(items.size())],
                     0.05 + 0.9 * rng.NextDouble());
    }
    pd.ClearDirtyPaths();
    for (int k = 0; k < 16; ++k) {
      ExpectBitwiseEqual(MustBatch(&shared, pd, {&queries[k]}),
                         MustBatch(&exact, pd, {&queries[k]}), "delta");
    }
    // One propagation per delta, not one per query; no recompiles at all.
    EXPECT_EQ(shared.profile().circuit_merged_propagations,
              merged + uint64_t(round) + 1);
    EXPECT_EQ(shared.profile().circuit_recompiles, 16u);
  }
}

TEST(CircuitTest, SharedGuardFlipIsolation) {
  // Two queries over disjoint ind branches: the engine skips slot-irrelevant
  // ind children outright (no gates, no guards), so flipping qx's kIsZero
  // guard re-records qx alone while qy keeps riding the shared circuit.
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId ind = pd.AddDistributional(a, PKind::kInd);
  const NodeId x = pd.AddOrdinary(ind, Intern("x"), 0.3);
  const NodeId y = pd.AddOrdinary(ind, Intern("y"), 0.6);
  pd.AddOrdinary(x, Intern("u"));
  pd.AddOrdinary(y, Intern("v"));
  pd.ClearDirtyPaths();
  const Pattern qx = Tp("a/x[u]");
  const Pattern qy = Tp("a/y[v]");
  CircuitBackend shared;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&qx}),
                     MustBatch(&exact, pd, {&qx}), "cold x");
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&qy}),
                     MustBatch(&exact, pd, {&qy}), "cold y");
  EXPECT_EQ(shared.shared_stats().registrations, 2u);
  EXPECT_EQ(shared.profile().circuit_recompiles, 2u);

  pd.SetEdgeProb(x, 0.0);  // Flips qx's kIsZero guard; qy never reads x.
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&qy}),
                     MustBatch(&exact, pd, {&qy}), "y after flip");
  EXPECT_EQ(shared.profile().circuit_recompiles, 2u);  // Propagated only.
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&qx}),
                     MustBatch(&exact, pd, {&qx}), "x after flip");
  EXPECT_EQ(shared.profile().circuit_recompiles, 3u);  // qx re-recorded.
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&qy}),
                     MustBatch(&exact, pd, {&qy}), "y replay");
  EXPECT_EQ(shared.profile().circuit_recompiles, 3u);
  EXPECT_EQ(shared.shared_stats().registrations, 2u);
}

TEST(CircuitTest, SharedGateCapIsolation) {
  // One query whose recording would blow the pool cap gets banned to plain
  // DP; the two small queries already registered keep their shared circuit
  // and keep being served by propagation. The branches are disjoint ind
  // subtrees, so churn in one query's cone cannot flip another's guards.
  Rng rng(8400);
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  std::vector<NodeId> spine;
  for (int i = 0; i < 40; ++i) {
    const NodeId ind = pd.AddDistributional(a, PKind::kInd);
    const NodeId b =
        pd.AddOrdinary(ind, Intern("b"), 0.05 + 0.9 * rng.NextDouble());
    const NodeId ind2 = pd.AddDistributional(b, PKind::kInd);
    const NodeId c =
        pd.AddOrdinary(ind2, Intern("c"), 0.05 + 0.9 * rng.NextDouble());
    spine.push_back(b);
    spine.push_back(c);
  }
  const NodeId ind_f = pd.AddDistributional(a, PKind::kInd);
  NodeId cur = pd.AddOrdinary(ind_f, Intern("f"), 0.9);
  std::vector<NodeId> chain;
  for (int i = 0; i < 150; ++i) {
    const NodeId mux = pd.AddDistributional(cur, PKind::kMux);
    cur = pd.AddOrdinary(mux, Intern("m"), 0.9);
    chain.push_back(cur);
  }
  pd.AddOrdinary(cur, Intern("z"));
  pd.ClearDirtyPaths();
  const Pattern s1 = Tp("a/b[c]");
  const Pattern s2 = Tp("a/b/c");
  const Pattern big = Tp("a//z");

  // Measure recording sizes on an uncapped backend (deterministic: same
  // document, same serve order).
  CircuitBackend probe;
  ExactDpBackend exact;
  MustBatch(&probe, pd, {&s1});
  MustBatch(&probe, pd, {&s2});
  const size_t small_pool = probe.shared_stats().pool_gates;
  MustBatch(&probe, pd, {&big});
  const size_t full_pool = probe.shared_stats().pool_gates;
  ASSERT_GT(full_pool, small_pool + 1);

  CircuitBackendOptions options;
  options.max_gates = small_pool + (full_pool - small_pool) / 2;
  CircuitBackend capped(options);
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&s1}),
                     MustBatch(&exact, pd, {&s1}), "cold s1");
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&s2}),
                     MustBatch(&exact, pd, {&s2}), "cold s2");
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&big}),
                     MustBatch(&exact, pd, {&big}), "big over cap");
  EXPECT_EQ(capped.cached_circuits(), 3u);  // Entry exists for the ban.
  EXPECT_EQ(capped.shared_stats().registrations, 2u);
  EXPECT_EQ(capped.shared_stats().pool_gates, small_pool);  // Rolled back.
  EXPECT_EQ(capped.profile().circuit_recompiles, 3u);

  const uint64_t merged = capped.profile().circuit_merged_propagations;
  for (int k = 0; k < 20; ++k) {
    pd.SetEdgeProb(spine[rng.NextBounded(spine.size())],
                   0.05 + 0.9 * rng.NextDouble());
    pd.SetEdgeProb(chain[rng.NextBounded(chain.size())],
                   0.5 + 0.45 * rng.NextDouble());
  }
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&s1}),
                     MustBatch(&exact, pd, {&s1}), "s1 after churn");
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&big}),
                     MustBatch(&exact, pd, {&big}), "big after churn");
  ExpectBitwiseEqual(MustBatch(&capped, pd, {&s2}),
                     MustBatch(&exact, pd, {&s2}), "s2 after churn");
  // The smalls propagated (one merged pass); only big paid a plain DP pass.
  EXPECT_EQ(capped.profile().circuit_merged_propagations, merged + 1);
  EXPECT_EQ(capped.profile().circuit_recompiles, 4u);
  EXPECT_EQ(capped.shared_stats().registrations, 2u);
}

TEST(CircuitTest, SharedDeepChainTwoQueries) {
  // Two descendant queries over a 600-deep mux chain that differ only in
  // their bottom leaf: the entire chain arithmetic is bitwise-identical
  // between them, so consing merges it and only the readouts are private.
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  std::vector<NodeId> chain;
  for (int i = 0; i < 600; ++i) {
    const NodeId mux = pd.AddDistributional(cur, PKind::kMux);
    cur = pd.AddOrdinary(mux, Intern("m"), 0.999);
    chain.push_back(cur);
  }
  pd.AddOrdinary(cur, Intern("y"));
  pd.AddOrdinary(cur, Intern("z"));
  pd.ClearDirtyPaths();
  const Pattern q1 = Tp("a//z");
  const Pattern q2 = Tp("a//y");
  CircuitBackend shared;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&q1}),
                     MustBatch(&exact, pd, {&q1}), "cold z");
  ExpectBitwiseEqual(MustBatch(&shared, pd, {&q2}),
                     MustBatch(&exact, pd, {&q2}), "cold y");
  const LineageCircuit::Stats stats = shared.shared_stats();
  EXPECT_EQ(stats.registrations, 2u);
  EXPECT_GT(stats.shared_gates, stats.private_gates);

  Rng rng(8600);
  const uint64_t merged = shared.profile().circuit_merged_propagations;
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 20; ++k) {
      pd.SetEdgeProb(chain[rng.NextBounded(chain.size())],
                     0.5 + 0.45 * rng.NextDouble());
    }
    pd.ClearDirtyPaths();
    ExpectBitwiseEqual(MustBatch(&shared, pd, {&q1}),
                       MustBatch(&exact, pd, {&q1}), "deep z");
    ExpectBitwiseEqual(MustBatch(&shared, pd, {&q2}),
                       MustBatch(&exact, pd, {&q2}), "deep y");
  }
  EXPECT_EQ(shared.profile().circuit_recompiles, 2u);
  EXPECT_EQ(shared.profile().circuit_merged_propagations, merged + 3);
}

TEST(CircuitTest, SharedWideKeyBatches) {
  // Two overlapping 'M'-mode batch registrations (a 10-query wide-key set
  // and a 5-query subset) sharing one pool across churn.
  std::vector<Pattern> queries;
  queries.push_back(Tp("root/l0/l1/l2"));
  queries.push_back(Tp("root//l2"));
  queries.push_back(Tp("root//l1/l2"));
  queries.push_back(Tp("root/l0//l2[l3]"));
  queries.push_back(Tp("root//l0/l1[l2]/l2"));
  queries.push_back(Tp("root//l0//l2"));
  queries.push_back(Tp("root/l0[l1]/l1/l2"));
  queries.push_back(Tp("root//l1[l2]/l2"));
  queries.push_back(Tp("root//l0[.//l3]//l2"));
  queries.push_back(Tp("root/l0/l1[l2]//l2"));
  std::vector<const Pattern*> all;
  for (const Pattern& q : queries) all.push_back(&q);
  const std::vector<const Pattern*> subset(all.begin(), all.begin() + 5);
  ASSERT_GT(BatchSlotCount(all), kNarrowSlotCap);

  for (int seed = 0; seed < 2; ++seed) {
    Rng rng(8700 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 80, 2);
    CircuitBackend shared;
    ExactDpBackend exact;
    for (int round = 0; round < 3; ++round) {
      if (round > 0) ChurnProbabilities(&pd, rng);
      for (const std::vector<const Pattern*>& members : {all, subset}) {
        StatusOr<std::vector<std::vector<NodeProb>>> got =
            shared.BatchAnchoredMany(pd, members);
        StatusOr<std::vector<std::vector<NodeProb>>> want =
            exact.BatchAnchoredMany(pd, members);
        ASSERT_TRUE(got.ok() && want.ok());
        ASSERT_EQ(got->size(), want->size());
        for (size_t i = 0; i < got->size(); ++i) {
          ExpectBitwiseEqual((*got)[i], (*want)[i], "wide shared");
        }
      }
      if (round == 0) {
        EXPECT_EQ(shared.shared_stats().registrations, 2u) << "seed " << seed;
      }
    }
  }
}

TEST(CircuitTest, LruEvictionKeepsServingBitwise) {
  // max_cached_queries = 2 with three queries round-robin: every third
  // serve evicts the least-recently-used registration, yet every answer
  // stays bit-identical to ExactDpBackend.
  Rng rng(8800);
  PDocument pd = RandomGuardStableDoc(rng, 60, 2);
  const Pattern q1 = Tp("root//l1");
  const Pattern q2 = Tp("root/l0/l1");
  const Pattern q3 = Tp("root//l0/l1[l2]");
  CircuitBackendOptions options;
  options.max_cached_queries = 2;
  CircuitBackend circuit(options);
  ExactDpBackend exact;
  for (int round = 0; round < 3; ++round) {
    if (round > 0) ChurnProbabilities(&pd, rng);
    for (const Pattern* q : {&q1, &q2, &q3}) {
      ExpectBitwiseEqual(MustBatch(&circuit, pd, {q}),
                         MustBatch(&exact, pd, {q}),
                         ("round " + std::to_string(round)).c_str());
      EXPECT_LE(circuit.cached_circuits(), 2u);
      EXPECT_LE(circuit.shared_stats().registrations, 2u);
    }
  }
  EXPECT_GE(circuit.profile().circuit_evictions, 3u);
}

}  // namespace
}  // namespace pxv
