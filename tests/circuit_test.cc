// Lineage-circuit equivalence suite (prob/circuit.h,
// prob/circuit_backend.h).
//
// The contract under test: CircuitBackend's answers are *bit-identical* to
// ExactDpBackend's in every regime — cold compiles, probability-only churn
// served by value re-propagation (with zero recompiles while no guard
// flips), guard flips, structural mutations and exp-distribution reshapes
// (all of which must fall back to a recompile, still bit-identical) — plus
// a finite-difference check of the backward pass's gradients.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gen/querygen.h"
#include "prob/backend.h"
#include "prob/circuit_backend.h"
#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

void ExpectBitwiseEqual(const std::vector<NodeProb>& got,
                        const std::vector<NodeProb>& want,
                        const char* context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << context << " entry " << i;
    EXPECT_EQ(Bits(got[i].prob), Bits(want[i].prob))
        << context << " node " << got[i].node << ": " << got[i].prob
        << " vs " << want[i].prob;
  }
}

double ProbOf(const std::vector<NodeProb>& results, NodeId n) {
  for (const NodeProb& np : results) {
    if (np.node == n) return np.prob;
  }
  return 0.0;
}

// ------------------------------------------------------- document gen ----

// Labels stratified by ordinary depth (see incremental_test.cc): a label
// never nests under itself, and the alphabet matches RandomQuery's.
Label StratLabel(int ordinary_depth) {
  return Intern("l" + std::to_string(ordinary_depth - 1));
}

// A probability that can never sit on a guard boundary: strictly inside
// (0, 1), and when `ways` siblings each draw one, their total stays < 0.9.
double SafeProb(Rng& rng, int ways) {
  return (0.05 + 0.8 * rng.NextDouble()) / ways;
}

void GrowGuardStable(PDocument* pd, NodeId parent, int odepth, int* budget,
                     Rng& rng) {
  if (*budget <= 0 || odepth > 4) return;
  const int fanout = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < fanout && *budget > 0; ++i) {
    const Label l = StratLabel(odepth);
    if (rng.NextBool(0.35)) {
      const PKind kind = rng.NextBool(0.5) ? PKind::kMux : PKind::kInd;
      const NodeId dist = pd->AddDistributional(parent, kind);
      const int alts = 1 + static_cast<int>(rng.NextBounded(2));
      for (int a = 0; a < alts; ++a) {
        const NodeId c = pd->AddOrdinary(
            dist, l, kind == PKind::kMux ? SafeProb(rng, alts)
                                         : 0.05 + 0.9 * rng.NextDouble());
        --*budget;
        GrowGuardStable(pd, c, odepth + 1, budget, rng);
      }
    } else {
      const NodeId c = pd->AddOrdinary(parent, l);
      --*budget;
      GrowGuardStable(pd, c, odepth + 1, budget, rng);
    }
  }
}

// Random stratified document whose probabilities all sit strictly inside
// (0, 1) with strictly sub-unit mux/exp totals — the regime where
// probability-only churn (which preserves those properties, see
// ChurnProbabilities) can never flip a recorded guard.
PDocument RandomGuardStableDoc(Rng& rng, int target_nodes, int exp_nodes) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  int budget = target_nodes;
  GrowGuardStable(&pd, root, 1, &budget, rng);
  while (pd.children(root).empty()) pd.AddOrdinary(root, StratLabel(1));
  std::vector<NodeId> ordinary;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n)) ordinary.push_back(n);
  }
  for (int e = 0; e < exp_nodes; ++e) {
    const NodeId host = ordinary[rng.NextBounded(ordinary.size())];
    int odepth = 1;
    for (NodeId a = pd.OrdinaryAncestor(host); a != kNullNode;
         a = pd.OrdinaryAncestor(a)) {
      ++odepth;
    }
    const NodeId exp = pd.AddExp(host);
    const int kids = 2 + static_cast<int>(rng.NextBounded(2));
    for (int k = 0; k < kids; ++k) {
      pd.AddOrdinary(exp, StratLabel(std::min(odepth + 1, 4)));
    }
    const int subsets = 2 + static_cast<int>(rng.NextBounded(2));
    std::vector<std::pair<std::vector<int>, double>> dist;
    for (int s = 0; s < subsets; ++s) {
      std::vector<int> subset;
      for (int k = 0; k < kids; ++k) {
        if (rng.NextBool(0.6)) subset.push_back(k);
      }
      dist.emplace_back(std::move(subset), SafeProb(rng, subsets));
    }
    pd.SetExpDistribution(exp, std::move(dist));
  }
  PXV_CHECK(pd.Validate().ok());
  pd.ClearDirtyPaths();
  return pd;
}

// Probability-only churn that keeps every recorded guard on its side: new
// values stay strictly inside (0, 1) with sub-unit totals, and exp subset
// *structures* are preserved (only the probabilities move).
void ChurnProbabilities(PDocument* pd, Rng& rng, double touch_prob = 0.5) {
  for (NodeId n = 0; n < pd->size(); ++n) {
    if (pd->ordinary(n)) continue;
    switch (pd->kind(n)) {
      case PKind::kMux: {
        const int kids = static_cast<int>(pd->children(n).size());
        for (NodeId c : pd->children(n)) {
          if (rng.NextBool(touch_prob)) {
            pd->SetEdgeProb(c, SafeProb(rng, kids));
          }
        }
        break;
      }
      case PKind::kInd:
        for (NodeId c : pd->children(n)) {
          if (rng.NextBool(touch_prob)) {
            pd->SetEdgeProb(c, 0.05 + 0.9 * rng.NextDouble());
          }
        }
        break;
      case PKind::kExp: {
        if (!rng.NextBool(touch_prob)) break;
        auto dist = pd->exp_distribution(n);
        const int subsets = static_cast<int>(dist.size());
        for (auto& [subset, p] : dist) p = SafeProb(rng, subsets);
        pd->SetExpDistribution(n, std::move(dist));
        break;
      }
      default:
        break;
    }
  }
  pd->ClearDirtyPaths();
}

std::vector<NodeProb> MustBatch(ProbBackend* b, const PDocument& pd,
                                const std::vector<const Pattern*>& members) {
  StatusOr<std::vector<NodeProb>> r = b->BatchAnchored(pd, members);
  PXV_CHECK(r.ok()) << r.status().message();
  return *std::move(r);
}

// ------------------------------------------------------- equivalence ----

TEST(CircuitTest, RandomizedColdEquivalence) {
  for (int seed = 0; seed < 32; ++seed) {
    Rng rng(7100 + seed);
    const PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    const Pattern q = RandomQuery(rng);
    CircuitBackend circuit;
    ExactDpBackend exact;
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}),
                       ("seed " + std::to_string(seed)).c_str());
    EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
    EXPECT_GT(circuit.profile().circuit_gates, 0u);
  }
}

TEST(CircuitTest, ProbabilityChurnBitwise) {
  // Random documents may contain probabilistic subtrees irrelevant to the
  // query; their Combine unit-drop guard sits on "mass == 1.0 exactly",
  // which an FP sum like (1-p)+p crosses for some values and not others —
  // so churn may legitimately force a recompile. The contract under test is
  // that every serve (propagated or recompiled) stays bit-identical, and
  // that propagation does the bulk of the work across the suite.
  uint64_t propagated_serves = 0, total_serves = 0;
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(7200 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    const Pattern q = RandomQuery(rng);
    CircuitBackend circuit;
    ExactDpBackend exact;
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}), "cold");
    for (int round = 0; round < 4; ++round) {
      ChurnProbabilities(&pd, rng);
      ExpectBitwiseEqual(
          MustBatch(&circuit, pd, {&q}), MustBatch(&exact, pd, {&q}),
          ("seed " + std::to_string(seed) + " round " + std::to_string(round))
              .c_str());
      ++total_serves;
    }
    propagated_serves += 1 + 4 - circuit.profile().circuit_recompiles;
  }
  EXPECT_GT(propagated_serves, total_serves / 2);
}

TEST(CircuitTest, RelevantDocChurnNeverRecompiles) {
  // When every probabilistic subtree is query-relevant (the delta-serving
  // workload the backend targets), no unit distribution ever reaches a
  // Combine drop site, so probability churn is served by pure value
  // re-propagation: one cold compile, zero rebuilds.
  Rng rng(7250);
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  std::vector<NodeId> items;
  for (int i = 0; i < 200; ++i) {
    const NodeId ind = pd.AddDistributional(a, PKind::kInd);
    const NodeId b = pd.AddOrdinary(ind, Intern("b"),
                                    0.05 + 0.9 * rng.NextDouble());
    const NodeId ind2 = pd.AddDistributional(b, PKind::kInd);
    const NodeId c = pd.AddOrdinary(ind2, Intern("c"),
                                    0.05 + 0.9 * rng.NextDouble());
    items.push_back(b);
    items.push_back(c);
  }
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b[c]");
  CircuitBackend circuit;
  ExactDpBackend exact;
  for (int round = 0; round < 6; ++round) {
    if (round > 0) {
      for (int k = 0; k < 25; ++k) {
        pd.SetEdgeProb(items[rng.NextBounded(items.size())],
                       0.05 + 0.9 * rng.NextDouble());
      }
      pd.ClearDirtyPaths();
    }
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}),
                       ("round " + std::to_string(round)).c_str());
  }
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
  EXPECT_GT(circuit.profile().circuit_dirty_gates, 0u);
}

TEST(CircuitTest, ManyModeChurnEquivalence) {
  const Pattern q1 = Tp("root//l1");
  const Pattern q2 = Tp("root/l0/l1");
  const Pattern q3 = Tp("root//l0/l1[l2]");
  const std::vector<const Pattern*> members{&q1, &q2, &q3};
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(7300 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 60, 2);
    CircuitBackend circuit;
    ExactDpBackend exact;
    for (int round = 0; round < 4; ++round) {
      if (round > 0) ChurnProbabilities(&pd, rng);
      StatusOr<std::vector<std::vector<NodeProb>>> got =
          circuit.BatchAnchoredMany(pd, members);
      StatusOr<std::vector<std::vector<NodeProb>>> want =
          exact.BatchAnchoredMany(pd, members);
      ASSERT_TRUE(got.ok() && want.ok());
      ASSERT_EQ(got->size(), want->size());
      for (size_t i = 0; i < got->size(); ++i) {
        ExpectBitwiseEqual((*got)[i], (*want)[i], "many");
      }
    }
    // Unit-drop guard flips may force recompiles on random documents (see
    // ProbabilityChurnBitwise); bitwise identity is the invariant.
    EXPECT_LE(circuit.profile().circuit_recompiles, 4u) << "seed " << seed;
  }
}

TEST(CircuitTest, WideKeyRegimeEquivalence) {
  // Ten members of 4-5 nodes each push the joint pass past kNarrowSlotCap
  // (32 slots), exercising the 256-bit wide-key algebra under recording.
  std::vector<Pattern> queries;
  queries.push_back(Tp("root/l0/l1/l2"));
  queries.push_back(Tp("root//l2"));
  queries.push_back(Tp("root//l1/l2"));
  queries.push_back(Tp("root/l0//l2[l3]"));
  queries.push_back(Tp("root//l0/l1[l2]/l2"));
  queries.push_back(Tp("root//l0//l2"));
  queries.push_back(Tp("root/l0[l1]/l1/l2"));
  queries.push_back(Tp("root//l1[l2]/l2"));
  queries.push_back(Tp("root//l0[.//l3]//l2"));
  queries.push_back(Tp("root/l0/l1[l2]//l2"));
  std::vector<const Pattern*> members;
  for (const Pattern& q : queries) members.push_back(&q);
  ASSERT_GT(BatchSlotCount(members), kNarrowSlotCap);

  for (int seed = 0; seed < 4; ++seed) {
    Rng rng(7400 + seed);
    PDocument pd = RandomGuardStableDoc(rng, 80, 2);
    CircuitBackend circuit;
    ExactDpBackend exact;
    for (int round = 0; round < 3; ++round) {
      if (round > 0) ChurnProbabilities(&pd, rng);
      StatusOr<std::vector<std::vector<NodeProb>>> got =
          circuit.BatchAnchoredMany(pd, members);
      StatusOr<std::vector<std::vector<NodeProb>>> want =
          exact.BatchAnchoredMany(pd, members);
      ASSERT_TRUE(got.ok() && want.ok());
      for (size_t i = 0; i < got->size(); ++i) {
        ExpectBitwiseEqual((*got)[i], (*want)[i], "wide");
      }
    }
    EXPECT_EQ(circuit.profile().circuit_recompiles, 1u) << "seed " << seed;
  }
}

TEST(CircuitTest, DeepChainChurn) {
  PDocument pd;
  NodeId cur = pd.AddRoot(Intern("a"));
  std::vector<NodeId> chain;
  for (int i = 0; i < 600; ++i) {
    const NodeId mux = pd.AddDistributional(cur, PKind::kMux);
    cur = pd.AddOrdinary(mux, Intern("m"), 0.999);
    chain.push_back(cur);
  }
  pd.AddOrdinary(cur, Intern("z"));
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a//z");
  CircuitBackend circuit;
  ExactDpBackend exact;
  Rng rng(7500);
  for (int round = 0; round < 4; ++round) {
    if (round > 0) {
      for (int k = 0; k < 20; ++k) {
        pd.SetEdgeProb(chain[rng.NextBounded(chain.size())],
                       0.5 + 0.45 * rng.NextDouble());
      }
      pd.ClearDirtyPaths();
    }
    ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                       MustBatch(&exact, pd, {&q}), "deep chain");
  }
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
}

// ------------------------------------------------------- fallbacks ----

TEST(CircuitTest, GuardFlipForcesRecompile) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId mux = pd.AddDistributional(a, PKind::kMux);
  const NodeId b1 = pd.AddOrdinary(mux, Intern("b"), 0.3);
  pd.AddOrdinary(mux, Intern("b"), 0.4);
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // p → 0 flips the recorded kIsZero guard: the engine would now skip this
  // alternative entirely, so the circuit must rebuild — and still match.
  pd.SetEdgeProb(b1, 0.0);
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after flip");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
  // And back into the open interval: another flip, another rebuild.
  pd.SetEdgeProb(b1, 0.25);
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after unflip");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 3u);
}

TEST(CircuitTest, StructuralMutationRecompiles) {
  Rng rng(7600);
  PDocument pd = RandomGuardStableDoc(rng, 40, 1);
  const Pattern q = Tp("root//l1");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // A structural mutation moves structure_version: recompile-on-demand.
  pd.AddOrdinary(pd.root(), StratLabel(1));
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after insert");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
}

TEST(CircuitTest, ExpReshapeForcesRecompile) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"));
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"));
  pd.AddOrdinary(exp, Intern("c"));
  pd.AddOrdinary(exp, Intern("d"));
  pd.SetExpDistribution(exp, {{{0, 1}, 0.3}, {{1, 2}, 0.2}});
  pd.ClearDirtyPaths();
  const Pattern q = Tp("a/b");
  CircuitBackend circuit;
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "cold");
  // Same subset count, different membership: structure_version does not
  // move, but the recorded exp signature must catch the reshape.
  pd.SetExpDistribution(exp, {{{0}, 0.3}, {{1, 2}, 0.2}});
  pd.ClearDirtyPaths();
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "after reshape");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
}

TEST(CircuitTest, UidFastPathSkipsPropagation) {
  Rng rng(7700);
  const PDocument pd = RandomGuardStableDoc(rng, 50, 1);
  const Pattern q = RandomQuery(rng);
  CircuitBackend circuit;
  const std::vector<NodeProb> first = MustBatch(&circuit, pd, {&q});
  const uint64_t dirty = circuit.profile().circuit_dirty_gates;
  const std::vector<NodeProb> second = MustBatch(&circuit, pd, {&q});
  ExpectBitwiseEqual(second, first, "replay");
  // No mutation between the serves: the replay must not even diff inputs.
  EXPECT_EQ(circuit.profile().circuit_dirty_gates, dirty);
  EXPECT_EQ(circuit.profile().circuit_recompiles, 1u);
}

TEST(CircuitTest, GateCapFallsBackToPlainDp) {
  Rng rng(7800);
  const PDocument pd = RandomGuardStableDoc(rng, 60, 2);
  const Pattern q = RandomQuery(rng);
  CircuitBackendOptions options;
  options.max_gates = 8;  // Far below any real recording.
  CircuitBackend circuit(options);
  ExactDpBackend exact;
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "over cap");
  EXPECT_EQ(circuit.cached_circuits(), 1u);  // Entry exists, circuit dropped.
  EXPECT_EQ(circuit.profile().circuit_gates, 0u);
  // Every call pays a plain recorded pass; none is compiled.
  ExpectBitwiseEqual(MustBatch(&circuit, pd, {&q}),
                     MustBatch(&exact, pd, {&q}), "over cap again");
  EXPECT_EQ(circuit.profile().circuit_recompiles, 2u);
  StatusOr<const LineageCircuit*> compiled = circuit.Compiled(pd, {&q});
  EXPECT_FALSE(compiled.ok());
}

// ------------------------------------------------------- gradients ----

TEST(CircuitTest, FiniteDifferenceGradient) {
  Rng rng(7900);
  PDocument pd = RandomGuardStableDoc(rng, 40, 2);
  const Pattern q = Tp("root//l1");
  CircuitBackend circuit;
  ExactDpBackend exact;
  const std::vector<NodeProb> answers = MustBatch(&circuit, pd, {&q});
  ASSERT_FALSE(answers.empty());
  const NodeId target = answers.front().node;

  StatusOr<std::vector<LineageCircuit::Sensitivity>> sens =
      circuit.Sensitivities(pd, {&q}, target);
  ASSERT_TRUE(sens.ok());
  ASSERT_FALSE(sens->empty());
  // Descending |grad| ordering.
  for (size_t i = 1; i < sens->size(); ++i) {
    EXPECT_GE(std::fabs((*sens)[i - 1].grad), std::fabs((*sens)[i].grad));
  }

  const double h = 1e-6;
  int checked = 0;
  for (const LineageCircuit::Sensitivity& s : *sens) {
    if (checked >= 12) break;
    ++checked;
    double plus, minus;
    if (s.input.kind == CircuitInput::Kind::kEdgeProb) {
      const double saved = pd.edge_prob(s.input.node);
      EXPECT_EQ(Bits(s.value), Bits(saved));
      pd.SetEdgeProb(s.input.node, saved + h);
      plus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      pd.SetEdgeProb(s.input.node, saved - h);
      minus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      pd.SetEdgeProb(s.input.node, saved);
    } else {
      auto dist = pd.exp_distribution(s.input.node);
      const double saved = dist[size_t(s.input.index)].second;
      EXPECT_EQ(Bits(s.value), Bits(saved));
      dist[size_t(s.input.index)].second = saved + h;
      pd.SetExpDistribution(s.input.node, dist);
      plus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      dist[size_t(s.input.index)].second = saved - h;
      pd.SetExpDistribution(s.input.node, dist);
      minus = ProbOf(MustBatch(&exact, pd, {&q}), target);
      dist[size_t(s.input.index)].second = saved;
      pd.SetExpDistribution(s.input.node, dist);
    }
    pd.ClearDirtyPaths();
    EXPECT_NEAR(s.grad, (plus - minus) / (2 * h), 1e-6)
        << "input node " << s.input.node;
  }
}

// ------------------------------------------------------- EvalSession ----

TEST(CircuitTest, EvalSessionCircuitBackend) {
  Rng rng(8000);
  PDocument pd = RandomGuardStableDoc(rng, 60, 2);
  const Pattern q = RandomQuery(rng);

  EvalOptions circuit_options;
  circuit_options.backend = BackendKind::kCircuit;
  EvalSession circuit_session(pd, circuit_options);
  EvalSession exact_session(pd, {});

  for (int round = 0; round < 3; ++round) {
    if (round > 0) ChurnProbabilities(&pd, rng);
    const std::vector<NodeProb> got = circuit_session.EvaluateTP(q);
    ExpectBitwiseEqual(got, exact_session.EvaluateTP(q), "session");
    EXPECT_STREQ(circuit_session.last_backend(), "circuit");
  }
  ASSERT_NE(circuit_session.dp_profile(), nullptr);
  EXPECT_EQ(circuit_session.dp_profile()->circuit_recompiles, 1u);

  const std::vector<NodeProb> answers = circuit_session.EvaluateTP(q);
  if (!answers.empty()) {
    const std::vector<LineageCircuit::Sensitivity> sens =
        circuit_session.Sensitivities(q, answers.front().node);
    EXPECT_FALSE(sens.empty());
  }
}

}  // namespace
}  // namespace pxv
