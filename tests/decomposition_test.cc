#include <gtest/gtest.h>

#include "gen/paper.h"
#include "rewrite/decomposition.h"
#include "tp/containment.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// Example 16: q = a[1]/b[2]/c[3]/d with views v1..v4. The system pins
// Pr(n ∈ q(P)) down uniquely.
TEST(DecompositionTest, Example16SystemSolvable) {
  const Pattern q = paper::Query16();
  std::vector<Pattern> views;
  for (int i = 1; i <= 4; ++i) views.push_back(paper::View16(i));
  const ViewDecomposition dec = DecomposeViews(q, views);
  ASSERT_TRUE(dec.ok);
  // Three nontrivial d-view classes: [1]@a, [2]@b, [3]@c (v4 is trivial).
  EXPECT_EQ(dec.dviews.size(), 3u);
  EXPECT_EQ(dec.view_classes[0].size(), 2u);  // v1 → {w1, w3}.
  EXPECT_EQ(dec.view_classes[1].size(), 2u);  // v2 → {w2, w3}.
  EXPECT_EQ(dec.view_classes[2].size(), 2u);  // v3 → {w1, w2}.
  EXPECT_TRUE(dec.view_classes[3].empty());   // v4 → ∅ (appearance only).
  EXPECT_EQ(dec.query_classes.size(), 3u);

  const auto coeffs = SolveSystem(dec);
  ASSERT_TRUE(coeffs.has_value());
  // The canonical solution: (v1+v2+v3−v4)/2.
  EXPECT_EQ((*coeffs)[0], Rational(1, 2));
  EXPECT_EQ((*coeffs)[1], Rational(1, 2));
  EXPECT_EQ((*coeffs)[2], Rational(1, 2));
  EXPECT_EQ((*coeffs)[3], Rational(-1, 2));
}

// Without v4 the appearance probability y_P is not retrievable: no unique
// solution (Lemma 3's necessity, system form).
TEST(DecompositionTest, Example16WithoutAppearanceView) {
  const Pattern q = paper::Query16();
  std::vector<Pattern> views;
  for (int i = 1; i <= 3; ++i) views.push_back(paper::View16(i));
  const ViewDecomposition dec = DecomposeViews(q, views);
  ASSERT_TRUE(dec.ok);
  EXPECT_FALSE(SolveSystem(dec).has_value());
}

// With only v1, v2 (deterministically sufficient!) the system cannot
// retrieve the probabilities: predicate [1] appears in no second equation.
TEST(DecompositionTest, DeterministicallySufficientButNotProbabilistically) {
  const Pattern q = paper::Query16();
  const ViewDecomposition dec =
      DecomposeViews(q, {paper::View16(1), paper::View16(2)});
  ASSERT_TRUE(dec.ok);
  EXPECT_FALSE(SolveSystem(dec).has_value());
}

TEST(DecompositionTest, QueryAsItsOwnView) {
  const Pattern q = paper::Query16();
  const ViewDecomposition dec = DecomposeViews(q, {q.Clone()});
  ASSERT_TRUE(dec.ok);
  const auto coeffs = SolveSystem(dec);
  ASSERT_TRUE(coeffs.has_value());
  EXPECT_EQ((*coeffs)[0], Rational(1));
}

TEST(DecomposeOneTest, PerNodeQueries) {
  // v = a[1]/b[2]/c[3]/d decomposes into one d-view per predicate node (all
  // its tokens are first/last — single token).
  const Pattern q = paper::Query16();
  const auto ws = DecomposeOne(paper::View16(1), q);
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 2u);  // [1]@a and [3]@c.
  for (const Pattern& w : *ws) {
    EXPECT_TRUE(Contains(w, q));
  }
}

TEST(DecomposeOneTest, TrivialViewDecomposesToNothing) {
  const Pattern q = paper::Query16();
  const auto ws = DecomposeOne(paper::View16(4), q);  // a//d.
  ASSERT_TRUE(ws.ok());
  EXPECT_TRUE(ws->empty());
}

TEST(DecomposeOneTest, MiddlePredicatesBulk) {
  // Three tokens: middle predicates are kept in bulk as one d-view.
  const Pattern q = Tp("r//a[x]//b[y]");
  const Pattern v = Tp("r//a[x]//b");
  const auto ws = DecomposeOne(v, q);
  ASSERT_TRUE(ws.ok());
  // v = r // a[x] // b: first token r, middle a[x], last b: the bulk middle
  // query carries [x].
  ASSERT_EQ(ws->size(), 1u);
  EXPECT_TRUE(Contains((*ws)[0], q));
}

TEST(DecomposeOneTest, DependentPredicatesMerged) {
  // Predicates [b] and [b/c] at the same node are c-dependent: Step 2 merges
  // them into one d-view.
  const Pattern q = Tp("a[b][b/c]/x");
  const Pattern v = Tp("a[b][b/c]/x");
  const auto ws = DecomposeOne(v, q);
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(ws->size(), 1u);
}

TEST(DecompositionTest, EquivalentDViewsShareClass) {
  // Two views with the same predicate at the same depth: one class.
  const Pattern q = Tp("a[p]/b[r]/c");
  const ViewDecomposition dec =
      DecomposeViews(q, {Tp("a[p]/b/c"), Tp("a[p]/b[r]/c")});
  ASSERT_TRUE(dec.ok);
  EXPECT_EQ(dec.dviews.size(), 2u);  // [p]@a and [r]@b.
  ASSERT_EQ(dec.view_classes[0].size(), 1u);
  EXPECT_EQ(dec.view_classes[0][0], dec.view_classes[1][0]);
}

TEST(DecompositionTest, DescendantMainBranchSystem) {
  // mb(q) with a //-edge; views with predicates on first/last tokens.
  const Pattern q = Tp("r[p]//s[t]/u");
  const ViewDecomposition dec =
      DecomposeViews(q, {Tp("r[p]//s/u"), Tp("r//s[t]/u"), Tp("r//s/u")});
  ASSERT_TRUE(dec.ok);
  const auto coeffs = SolveSystem(dec);
  ASSERT_TRUE(coeffs.has_value());
  // v3 = r//s/u is the appearance view; q = v1 + v2 − v3.
  EXPECT_EQ((*coeffs)[0], Rational(1));
  EXPECT_EQ((*coeffs)[1], Rational(1));
  EXPECT_EQ((*coeffs)[2], Rational(-1));
}

}  // namespace
}  // namespace pxv
