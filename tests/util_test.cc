#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace pxv {
namespace {

TEST(RngTest, DeterministicStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedFrequency) {
  Rng rng(9);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (rng.NextWeighted(weights) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status e = Status::Error("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "boom");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Error("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("Id(42)", "Id("));
  EXPECT_FALSE(StartsWith("id(42)", "Id("));
}

TEST(StringsTest, FormatProbability) {
  EXPECT_EQ(FormatProbability(0.5), "0.5");
  EXPECT_EQ(FormatProbability(1.0), "1");
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRunsInlineForSmallWork) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.ParallelFor(1, [&](int) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
  pool.ParallelFor(0, [&](int) { FAIL() << "body must not run for n=0"; });
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back(
        [&] { pool.ParallelFor(100, [&](int) { total.fetch_add(1); }); });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, DefaultThreadsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::DefaultThreads());
}

}  // namespace
}  // namespace pxv
