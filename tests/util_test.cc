#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace pxv {
namespace {

TEST(RngTest, DeterministicStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedFrequency) {
  Rng rng(9);
  std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (rng.NextWeighted(weights) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status e = Status::Error("boom");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.message(), "boom");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Error("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().message(), "nope");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("Id(42)", "Id("));
  EXPECT_FALSE(StartsWith("id(42)", "Id("));
}

TEST(StringsTest, FormatProbability) {
  EXPECT_EQ(FormatProbability(0.5), "0.5");
  EXPECT_EQ(FormatProbability(1.0), "1");
}

}  // namespace
}  // namespace pxv
