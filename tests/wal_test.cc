// Durability primitives, bottom up: CRC32C and the byte codec, WAL frame
// encode/decode with the torn-tail and bit-rot contracts, checkpoint file
// round trips, the fault-injecting IoEnv itself, PDocument arena
// serialization (exp nodes, tombstones, the >32-distinct-label wide-key
// regime, version stamps), and the DocMutation batch codec that forms the
// kApply WAL record body.

#include "serve/wal.h"

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "pxml/parser.h"
#include "pxml/pdocument.h"
#include "serve/checkpoint.h"
#include "serve/document_store.h"
#include "serve/io_env.h"
#include "util/codec.h"
#include "util/crc32c.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

// ------------------------------------------------------------- crc32c ----

TEST(Crc32cTest, KnownAnswerVector) {
  // The standard CRC-32C check value ("123456789" → 0xE3069283).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const std::string_view head(data.data(), split);
    const std::string_view tail(data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32c(tail, Crc32c(head)), Crc32c(data));
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);  // Stored form differs from raw CRC.
  }
}

// -------------------------------------------------------------- codec ----

TEST(CodecTest, RoundTripsEveryFieldType) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0xDEADBEEF);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutI32(&buf, -7);
  PutI64(&buf, -1234567890123ll);
  PutF64(&buf, 0.1);  // Not exactly representable: must survive bit-exact.
  PutBytes(&buf, "payload");
  ByteReader in(buf);
  EXPECT_EQ(in.GetU8(), 0xAB);
  EXPECT_EQ(in.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(in.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.GetI32(), -7);
  EXPECT_EQ(in.GetI64(), -1234567890123ll);
  EXPECT_EQ(in.GetF64(), 0.1);
  EXPECT_EQ(in.GetBytes(), "payload");
  EXPECT_TRUE(in.ok());
  EXPECT_TRUE(in.AtEnd());
}

TEST(CodecTest, TruncatedReadLatchesErrorWithDefinedValues) {
  std::string buf;
  PutU32(&buf, 42);
  buf.resize(2);  // Torn mid-field.
  ByteReader in(buf);
  EXPECT_EQ(in.GetU32(), 0u);
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.GetU64(), 0u);  // Every later read stays defined.
  EXPECT_EQ(in.GetBytes(), "");
}

// --------------------------------------------------------- WAL frames ----

WalRecord MakeRecord(uint64_t lsn, WalRecordKind kind, std::string doc,
                     std::string body) {
  WalRecord r;
  r.kind = kind;
  r.lsn = lsn;
  r.doc = std::move(doc);
  r.body = std::move(body);
  return r;
}

TEST(WalFrameTest, SegmentRoundTripsRecords) {
  std::string segment;
  segment += EncodeWalRecord(MakeRecord(1, WalRecordKind::kPut, "alpha", "AA"));
  segment += EncodeWalRecord(MakeRecord(2, WalRecordKind::kApply, "beta", ""));
  segment += EncodeWalRecord(MakeRecord(3, WalRecordKind::kDrop, "alpha", ""));
  const WalReadResult read = DecodeWalSegment(segment);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.torn_tail_dropped, 0);
  EXPECT_EQ(read.valid_bytes, segment.size());
  EXPECT_EQ(read.records[0].kind, WalRecordKind::kPut);
  EXPECT_EQ(read.records[0].lsn, 1u);
  EXPECT_EQ(read.records[0].doc, "alpha");
  EXPECT_EQ(read.records[0].body, "AA");
  EXPECT_EQ(read.records[1].kind, WalRecordKind::kApply);
  EXPECT_EQ(read.records[2].doc, "alpha");
  EXPECT_EQ(read.records[1].offset,
            static_cast<uint64_t>(
                EncodeWalRecord(MakeRecord(1, WalRecordKind::kPut, "alpha",
                                           "AA"))
                    .size()));
}

// Every possible truncation point yields exactly the complete-record
// prefix, with the torn flag set iff bytes were actually dropped — the
// crash-mid-append contract recovery relies on.
TEST(WalFrameTest, TruncationSweepRecoversTheCompletePrefix) {
  std::vector<size_t> boundaries{0};
  std::string segment;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    segment += EncodeWalRecord(
        MakeRecord(lsn, WalRecordKind::kApply, "doc",
                   std::string(static_cast<size_t>(lsn) * 7, 'x')));
    boundaries.push_back(segment.size());
  }
  for (size_t cut = 0; cut <= segment.size(); ++cut) {
    const WalReadResult read = DecodeWalSegment(
        std::string_view(segment).substr(0, cut));
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(read.records.size(), complete) << "cut at " << cut;
    EXPECT_EQ(read.valid_bytes, boundaries[complete]) << "cut at " << cut;
    EXPECT_EQ(read.torn_tail_dropped, cut == boundaries[complete] ? 0 : 1)
        << "cut at " << cut;
    for (size_t i = 0; i < read.records.size(); ++i) {
      EXPECT_EQ(read.records[i].lsn, i + 1);
    }
  }
}

// Any single flipped bit anywhere in the segment yields a (possibly empty)
// prefix of the original records, never altered content.
TEST(WalFrameTest, BitRotNeverYieldsAlteredRecords) {
  std::string segment;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    segment += EncodeWalRecord(
        MakeRecord(lsn, WalRecordKind::kPut, "d" + std::to_string(lsn),
                   std::string(5, static_cast<char>('a' + lsn))));
  }
  const WalReadResult clean = DecodeWalSegment(segment);
  ASSERT_EQ(clean.records.size(), 3u);
  for (size_t pos = 0; pos < segment.size(); ++pos) {
    std::string rotted = segment;
    rotted[pos] ^= 0x40;
    const WalReadResult read = DecodeWalSegment(rotted);
    ASSERT_LE(read.records.size(), 3u);
    for (size_t i = 0; i < read.records.size(); ++i) {
      EXPECT_EQ(read.records[i].lsn, clean.records[i].lsn) << "pos " << pos;
      EXPECT_EQ(read.records[i].body, clean.records[i].body) << "pos " << pos;
    }
  }
}

TEST(WalFileNameTest, NamesRoundTripAndRejectForeignFiles) {
  uint64_t seq = 0;
  EXPECT_TRUE(ParseWalSegmentFileName(WalSegmentFileName(42), &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_TRUE(ParseCheckpointFileName(CheckpointFileName(7), &seq));
  EXPECT_EQ(seq, 7u);
  EXPECT_FALSE(ParseWalSegmentFileName("ckpt-000000000007", &seq));
  EXPECT_FALSE(ParseCheckpointFileName("wal-000000000042.log", &seq));
  EXPECT_FALSE(ParseCheckpointFileName("ckpt-000000000007.tmp", &seq));
  EXPECT_FALSE(ParseWalSegmentFileName("wal-abc.log", &seq));
}

// ---------------------------------------------------------- io fault env ----

std::string TestDir(const char* name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/pxv_wal_test_" + name;
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_TRUE(IoEnv::Real()->CreateDir(dir).ok());
  return dir;
}

TEST(FaultInjectingIoEnvTest, FailsTheNthMutatingOpThenDies) {
  const std::string dir = TestDir("fail");
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kFail;
  plan.fail_at = 1;  // OpenForAppend is op 0, first Append is op 1.
  FaultInjectingIoEnv env(IoEnv::Real(), plan);
  auto file = env.OpenForAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("doomed").ok());
  EXPECT_TRUE(env.fault_fired());
  // The crashed environment refuses everything, like a dead process.
  EXPECT_FALSE((*file)->Append("after").ok());
  EXPECT_FALSE(env.ReadFile(dir + "/f").ok());
}

TEST(FaultInjectingIoEnvTest, ShortWriteLeavesATornPrefix) {
  const std::string dir = TestDir("short");
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kShortWrite;
  plan.fail_at = 1;
  plan.crash = false;  // Keep the env alive to inspect the file.
  FaultInjectingIoEnv env(IoEnv::Real(), plan);
  auto file = env.OpenForAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE((*file)->Append("0123456789").ok());
  EXPECT_TRUE((*file)->Close().ok());
  const auto bytes = IoEnv::Real()->ReadFile(dir + "/f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "01234");  // Half the bytes landed, then the error.
}

TEST(FaultInjectingIoEnvTest, SimulateCrashDropsUnsyncedBytes) {
  const std::string dir = TestDir("crash");
  FaultPlan plan;  // fail_at = -1: no fault, just watermark bookkeeping.
  FaultInjectingIoEnv env(IoEnv::Real(), plan);
  auto file = env.OpenForAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());
  ASSERT_TRUE(env.SimulateCrash().ok());
  const auto bytes = IoEnv::Real()->ReadFile(dir + "/f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "durable");  // Page-cache loss: only synced bytes live.
}

TEST(FaultInjectingIoEnvTest, CorruptModeFlipsOneByteAndCarriesOn) {
  const std::string dir = TestDir("corrupt");
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kCorrupt;
  plan.fail_at = 1;
  FaultInjectingIoEnv env(IoEnv::Real(), plan);
  auto file = env.OpenForAppend(dir + "/f");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("0123456789").ok());  // "Succeeds", corrupted.
  EXPECT_TRUE((*file)->Append("more").ok());        // Env stays alive.
  EXPECT_TRUE((*file)->Close().ok());
  const auto bytes = IoEnv::Real()->ReadFile(dir + "/f");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 14u);
  EXPECT_NE(bytes->substr(0, 10), "0123456789");
  EXPECT_EQ(bytes->substr(10), "more");
}

// --------------------------------------------------- WalWriter + files ----

TEST(WalWriterTest, AppendsSurviveReopenAndPoisonOnFault) {
  const std::string dir = TestDir("writer");
  const std::string path = dir + "/" + WalSegmentFileName(1);
  {
    auto writer =
        WalWriter::Open(IoEnv::Real(), path, FsyncPolicy::kAlways, 1);
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(
        (*writer)->Append(MakeRecord(1, WalRecordKind::kPut, "d", "x")).ok());
    EXPECT_TRUE(
        (*writer)->Append(MakeRecord(2, WalRecordKind::kDrop, "d", "")).ok());
    EXPECT_EQ((*writer)->appended_records(), 2);
    EXPECT_TRUE((*writer)->Close().ok());
  }
  const auto read = ReadWalSegment(IoEnv::Real(), path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].lsn, 2u);

  // A writer whose append faults poisons itself: no append after a
  // possibly-torn frame.
  FaultPlan plan;
  plan.mode = FaultPlan::Mode::kShortWrite;
  plan.fail_at = 1;
  plan.crash = false;
  FaultInjectingIoEnv env(IoEnv::Real(), plan);
  // kAlways flushes the group-commit buffer on every Append, so the fault
  // surfaces immediately (kBatch/kNone would defer it to the sync point).
  auto writer = WalWriter::Open(&env, dir + "/" + WalSegmentFileName(2),
                                FsyncPolicy::kAlways, 1);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(
      (*writer)->Append(MakeRecord(3, WalRecordKind::kPut, "d", "y")).ok());
  EXPECT_FALSE(
      (*writer)->Append(MakeRecord(4, WalRecordKind::kPut, "d", "z")).ok());
}

// ---------------------------------------------------------- checkpoints ----

TEST(CheckpointTest, EncodeDecodeRoundTripsAndRejectsDamage) {
  CheckpointData data;
  data.wal_seq = 9;
  data.docs.push_back({"alpha", 17, std::string("\x01\x02\x00\x03", 4)});
  data.docs.push_back({"beta", 4, ""});
  const std::string bytes = EncodeCheckpoint(data);
  const auto decoded = DecodeCheckpoint(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->wal_seq, 9u);
  ASSERT_EQ(decoded->docs.size(), 2u);
  EXPECT_EQ(decoded->docs[0].name, "alpha");
  EXPECT_EQ(decoded->docs[0].last_lsn, 17u);
  EXPECT_EQ(decoded->docs[0].doc_image, std::string("\x01\x02\x00\x03", 4));
  EXPECT_EQ(decoded->docs[1].name, "beta");

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeCheckpoint(std::string_view(bytes).substr(0, cut)).ok())
        << "cut at " << cut;
  }
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string rotted = bytes;
    rotted[pos] ^= 0x10;
    EXPECT_FALSE(DecodeCheckpoint(rotted).ok()) << "flip at " << pos;
  }
}

// -------------------------------------------- PDocument serialization ----

// Bit-for-bit round trip: re-serializing the restored document must yield
// the identical image (the image covers kinds, labels, pids, parents,
// child order, probabilities, exp distributions, tombstones and version
// stamps — everything except the process-local uid).
void ExpectImageRoundTrip(const PDocument& doc) {
  std::string image;
  doc.SerializeTo(&image);
  const auto restored = PDocument::Deserialize(image);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  std::string again;
  restored->SerializeTo(&again);
  EXPECT_EQ(image, again);
  EXPECT_EQ(restored->size(), doc.size());
  EXPECT_EQ(restored->live_size(), doc.live_size());
  EXPECT_EQ(restored->detached_count(), doc.detached_count());
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(PDocumentSerializeTest, PersonnelDocRoundTrips) {
  Rng rng(411);
  ExpectImageRoundTrip(PersonnelPDocument(rng, 25, 0.3, 0.4));
}

TEST(PDocumentSerializeTest, ExpNodesRoundTripExactly) {
  PDocument pd;
  const NodeId a = pd.AddRoot(Intern("a"), 1);
  const NodeId exp = pd.AddExp(a);
  pd.AddOrdinary(exp, Intern("b"), 1.0, 2);
  pd.AddOrdinary(exp, Intern("c"), 1.0, 3);
  pd.AddOrdinary(exp, Intern("d"), 1.0, 4);
  pd.SetExpDistribution(exp, {{{0, 1}, 0.5}, {{2}, 0.25}, {{0, 1, 2}, 0.1}});
  ASSERT_TRUE(pd.Validate().ok());
  ExpectImageRoundTrip(pd);

  std::string image;
  pd.SerializeTo(&image);
  const auto restored = PDocument::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  const NodeId rexp = restored->children(restored->root())[0];
  EXPECT_EQ(restored->kind(rexp), PKind::kExp);
  EXPECT_EQ(restored->exp_distribution(rexp), pd.exp_distribution(exp));
}

TEST(PDocumentSerializeTest, TombstonesAndVersionsSurvive) {
  Rng rng(7);
  PDocument pd = PersonnelPDocument(rng, 10, 0.3, 0.4);
  // Detach one person subtree: the tombstones must survive the round trip
  // (the compaction threshold depends on them).
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == Intern("person") &&
        !pd.detached(n)) {
      pd.RemoveSubtree(n);
      break;
    }
  }
  ASSERT_GT(pd.detached_count(), 0);
  ExpectImageRoundTrip(pd);

  std::string image;
  pd.SerializeTo(&image);
  const auto restored = PDocument::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  for (NodeId n = 0; n < pd.size(); ++n) {
    EXPECT_EQ(restored->version(n), pd.version(n));
    EXPECT_EQ(restored->detached(n), pd.detached(n));
  }
  // The restored document is its own object: fresh uid, and future stamps
  // can never collide with the restored ones (counter bumped past them).
  EXPECT_NE(restored->uid(), pd.uid());
}

TEST(PDocumentSerializeTest, RestoredVersionStampsNeverCollideForward) {
  PDocument pd;
  pd.AddRoot(Intern("a"), 1);
  pd.AddOrdinary(pd.root(), Intern("b"), 1.0, 2);
  std::string image;
  pd.SerializeTo(&image);
  auto restored = PDocument::Deserialize(image);
  ASSERT_TRUE(restored.ok());
  std::set<uint64_t> old_stamps;
  for (NodeId n = 0; n < restored->size(); ++n) {
    old_stamps.insert(restored->version(n));
  }
  // A fresh mutation must draw a stamp strictly beyond every restored one.
  restored->SetEdgeProb(restored->children(restored->root())[0], 1.0);
  EXPECT_EQ(old_stamps.count(restored->version(restored->root())), 0u);
}

TEST(PDocumentSerializeTest, WideKeyManyLabelDocRoundTrips) {
  // > 32 distinct labels: the regime where pattern-key bitsets go wide.
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("wide_root"), 1);
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  for (int i = 0; i < 40; ++i) {
    const NodeId child = pd.AddOrdinary(ind, Intern("w" + std::to_string(i)),
                                        0.5 + 0.01 * i, 100 + i);
    pd.AddOrdinary(child, Intern("w" + std::to_string((i + 1) % 40)), 1.0,
                   200 + i);
  }
  ASSERT_TRUE(pd.Validate().ok());
  ExpectImageRoundTrip(pd);
}

TEST(PDocumentSerializeTest, MalformedImagesAreRejectedNotFatal) {
  Rng rng(3);
  const PDocument pd = PersonnelPDocument(rng, 6, 0.3, 0.4);
  std::string image;
  pd.SerializeTo(&image);
  for (size_t cut = 0; cut < image.size(); ++cut) {
    EXPECT_FALSE(
        PDocument::Deserialize(std::string_view(image).substr(0, cut)).ok())
        << "cut at " << cut;
  }
  // Bit flips have no CRC shield at this layer (the WAL/checkpoint frames
  // provide it); the decoder must still never crash or produce an invalid
  // document.
  for (size_t pos = 0; pos < image.size(); ++pos) {
    std::string rotted = image;
    rotted[pos] ^= 0x01;
    const auto restored = PDocument::Deserialize(rotted);
    if (restored.ok()) {
      EXPECT_TRUE(restored->Validate().ok() ||
                  !restored->Validate().message().empty());
    }
  }
}

// ------------------------------------------------ mutation batch codec ----

TEST(MutationBatchCodecTest, AllKindsRoundTrip) {
  PDocument payload;
  payload.AddRoot(Intern("extra"), 900);
  payload.AddOrdinary(payload.root(), Intern("leaf"), 1.0, 901);
  const std::vector<DocMutation> batch = {
      DocMutation::InsertSubtree(5, payload, 0.375),
      DocMutation::RemoveSubtree(6),
      DocMutation::SetEdgeProb(7, 0.1),
      DocMutation::SetExpDistribution(8, 2, {{{0, 2}, 0.5}, {{1}, 0.25}}),
  };
  const std::string bytes = EncodeMutationBatch(batch);
  const auto decoded = DecodeMutationBatch(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_EQ((*decoded)[0].kind, DocMutation::Kind::kInsertSubtree);
  EXPECT_EQ((*decoded)[0].target, 5);
  EXPECT_EQ((*decoded)[0].prob, 0.375);
  ASSERT_EQ((*decoded)[0].subtree.size(), 2);
  EXPECT_EQ((*decoded)[0].subtree.pid((*decoded)[0].subtree.root()), 900);
  EXPECT_EQ((*decoded)[1].kind, DocMutation::Kind::kRemoveSubtree);
  EXPECT_EQ((*decoded)[1].target, 6);
  EXPECT_EQ((*decoded)[2].kind, DocMutation::Kind::kSetEdgeProb);
  EXPECT_EQ((*decoded)[2].prob, 0.1);
  EXPECT_EQ((*decoded)[3].kind, DocMutation::Kind::kSetExpDistribution);
  EXPECT_EQ((*decoded)[3].dist_child_index, 2);
  EXPECT_EQ((*decoded)[3].exp_dist,
            (std::vector<std::pair<std::vector<int>, double>>{
                {{0, 2}, 0.5}, {{1}, 0.25}}));

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DecodeMutationBatch(std::string_view(bytes).substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

}  // namespace
}  // namespace pxv
