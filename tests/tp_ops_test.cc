#include <gtest/gtest.h>

#include "gen/paper.h"
#include "tp/containment.h"
#include "tp/ops.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// Example 9: the prefix q^(2) of q_RBON is
// IT-personnel//person[name/Rick][bonus/laptop]; the suffix at depth 2 is
// person[name/Rick]/bonus[laptop]; the tokens are IT-personnel and
// person[name/Rick]/bonus[laptop].
TEST(OpsTest, PaperExample9Prefix) {
  const Pattern q = paper::QueryRBON();
  const Pattern p2 = Prefix(q, 2);
  EXPECT_EQ(p2.MainBranchLength(), 2);
  EXPECT_EQ(LabelName(p2.OutLabel()), "person");
  // Structure unchanged — only the out mark moved.
  EXPECT_EQ(p2.size(), q.size());
  EXPECT_TRUE(IsomorphicPatterns(
      p2, Tp("IT-personnel//person[name/Rick][bonus/laptop]")));
}

TEST(OpsTest, PaperExample9Suffix) {
  const Pattern q = paper::QueryRBON();
  const Pattern s2 = Suffix(q, 2);
  EXPECT_TRUE(IsomorphicPatterns(s2, Tp("person[name/Rick]/bonus[laptop]")));
}

TEST(OpsTest, PaperExample9Tokens) {
  const Pattern q = paper::QueryRBON();
  ASSERT_EQ(TokenCount(q), 2);
  EXPECT_TRUE(IsomorphicPatterns(Token(q, 0), Tp("IT-personnel")));
  EXPECT_TRUE(IsomorphicPatterns(Token(q, 1),
                                 Tp("person[name/Rick]/bonus[laptop]")));
  EXPECT_TRUE(IsomorphicPatterns(LastToken(q), Token(q, 1)));
}

// Example 10: q' = IT-personnel//person[name/Rick]/bonus,
// q'' = IT-personnel//person/bonus[laptop], v' = v1_BON.
TEST(OpsTest, PaperExample10) {
  const Pattern q = paper::QueryRBON();
  const int k = 3;
  EXPECT_TRUE(IsomorphicPatterns(
      QPrime(q, k), Tp("IT-personnel//person[name/Rick]/bonus")));
  EXPECT_TRUE(IsomorphicPatterns(
      QDoublePrime(q, k), Tp("IT-personnel//person/bonus[laptop]")));
  EXPECT_TRUE(IsomorphicPatterns(StripOutPredicates(paper::ViewV1BON()),
                                 paper::ViewV1BON()));
}

// Compensation example from §3: comp(a/b, b[c][d]/e) = a/b[c][d]/e.
TEST(OpsTest, PaperCompensationExample) {
  const Pattern r = Compensate(Tp("a/b"), Tp("b[c][d]/e"));
  EXPECT_TRUE(IsomorphicPatterns(r, Tp("a/b[c][d]/e")));
}

TEST(OpsTest, CompensateOutAtRoot) {
  // Compensating with a single-node pattern keeps out at the merge point.
  const Pattern r = Compensate(Tp("a/b"), Tp("b[c]"));
  EXPECT_TRUE(IsomorphicPatterns(r, Tp("a/b[c]")));
  EXPECT_EQ(LabelName(r.OutLabel()), "b");
}

// Example 14 / Example 12: the last token of v = a//b[e]/c/b/c is
// b[e]/c/b/c, whose label sequence (b,c,b,c) has maximal prefix-suffix 2.
TEST(OpsTest, PaperExample14PrefixSuffix) {
  const Pattern v = paper::View12();
  const Pattern t = LastToken(v);
  EXPECT_TRUE(IsomorphicPatterns(t, Tp("b[e]/c/b/c")));
  EXPECT_EQ(MaxPrefixSuffix(TokenLabels(v, TokenCount(v) - 1)), 2);
}

TEST(OpsTest, MaxPrefixSuffixCases) {
  auto labels = [](std::initializer_list<const char*> names) {
    std::vector<Label> out;
    for (const char* n : names) out.push_back(Intern(n));
    return out;
  };
  EXPECT_EQ(MaxPrefixSuffix(labels({"b"})), 0);
  EXPECT_EQ(MaxPrefixSuffix(labels({"b", "b"})), 1);
  EXPECT_EQ(MaxPrefixSuffix(labels({"b", "c", "b"})), 1);
  EXPECT_EQ(MaxPrefixSuffix(labels({"b", "c", "b", "c"})), 2);
  EXPECT_EQ(MaxPrefixSuffix(labels({"a", "b", "c"})), 0);
  EXPECT_EQ(MaxPrefixSuffix(labels({"a", "b", "a", "b", "a", "b"})), 2);
}

TEST(OpsTest, MainBranchOnly) {
  const Pattern q = paper::QueryRBON();
  const Pattern mb = MainBranchOnly(q);
  EXPECT_TRUE(IsomorphicPatterns(mb, Tp("IT-personnel//person/bonus")));
  EXPECT_TRUE(IsLinear(mb));
  EXPECT_FALSE(IsLinear(q));
}

TEST(OpsTest, StripOutPredicatesOnPrefix) {
  // Stripping out-predicates of a prefix also drops the former main branch.
  const Pattern q = Tp("a/b[x]/c");
  const Pattern p = Prefix(q, 2);
  const Pattern stripped = StripOutPredicates(p);
  EXPECT_TRUE(IsomorphicPatterns(stripped, Tp("a/b")));
}

TEST(OpsTest, MbHasDescendantEdge) {
  EXPECT_TRUE(MbHasDescendantEdge(Tp("a//b/c"), 2));
  EXPECT_FALSE(MbHasDescendantEdge(Tp("a/b[.//x]/c"), 2));
  EXPECT_FALSE(MbHasDescendantEdge(Tp("a//b/c"), 3));
}

TEST(OpsTest, TokensWithMultipleDescendants) {
  const Pattern q = Tp("a/b//c[x]//d/e");
  ASSERT_EQ(TokenCount(q), 3);
  EXPECT_TRUE(IsomorphicPatterns(Token(q, 0), Tp("a/b")));
  EXPECT_TRUE(IsomorphicPatterns(Token(q, 1), Tp("c[x]")));
  EXPECT_TRUE(IsomorphicPatterns(Token(q, 2), Tp("d/e")));
}

TEST(OpsTest, WithMarkerChild) {
  const Pattern q = Tp("a/b");
  const Pattern marked = WithMarkerChild(q, q.out(), IdMarkerLabel(7));
  EXPECT_EQ(marked.size(), 3);
  EXPECT_TRUE(IsomorphicPatterns(marked, Tp("a/b[Id(7)]")));
}

TEST(OpsTest, FactOneViaCompensation) {
  // comp(v1_BON, bonus[laptop]) ≡ q_RBON (paper, after Fact 1).
  const Pattern v = paper::ViewV1BON();
  const Pattern q = paper::QueryRBON();
  const Pattern comp = Compensate(v, Suffix(q, 3));
  EXPECT_TRUE(Equivalent(comp, q));
}

TEST(OpsTest, PrefixBoundsChecked) {
  const Pattern q = Tp("a/b/c");
  EXPECT_EQ(Prefix(q, 1).MainBranchLength(), 1);
  EXPECT_EQ(Prefix(q, 3).MainBranchLength(), 3);
  EXPECT_EQ(Suffix(q, 3).size(), 1);
}

}  // namespace
}  // namespace pxv
