// Semantic identities the paper relies on, verified operationally:
//
//   Prop. 1 — Pr(n ∈ q(P)) > 0  iff  Pr(n ∈ q_r(P_v)) > 0: the extension's
//             data suffices to *retrieve* answers even when probabilities
//             are not computable.
//   §5.1    — a TP∩ query is equivalent to the union of its interleavings
//             (checked by evaluating both sides over random documents).
//   §3      — unfolding: a plan over extensions retrieves exactly the
//             original query's answers, under both result semantics.

#include <gtest/gtest.h>

#include <set>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "prob/query_eval.h"
#include "pxml/sampler.h"
#include "pxml/view_extension.h"
#include "rewrite/rewriter.h"
#include "rewrite/tp_rewrite.h"
#include "tp/eval.h"
#include "tp/ops.h"
#include "tp/parser.h"
#include "tpi/eval.h"
#include "tpi/interleaving.h"
#include "util/random.h"
#include "xml/parser.h"

namespace pxv {
namespace {

// Prop. 1 on paper and random instances: the deterministic plan retrieves a
// pid iff the query's direct probability is positive — even for Example 11,
// where the probability function does not exist.
TEST(SemanticsTest, Proposition1RetrievalEquivalence) {
  struct Case {
    PDocument pd;
    Pattern q;
    Pattern v;
  };
  std::vector<Case> cases;
  cases.push_back({paper::PDocPER(), paper::QueryBON(), paper::ViewV2BON()});
  cases.push_back({paper::PDoc1(), paper::Query11(), paper::View11()});
  cases.push_back({paper::PDoc2(), paper::Query11(), paper::View11()});
  cases.push_back({paper::PDoc3(), paper::Query12(), paper::View12()});
  cases.push_back({paper::PDoc4(), paper::Query12(), paper::View12()});
  for (const Case& c : cases) {
    // Materialize the single view.
    std::vector<ViewResultEntry> results;
    for (const NodeProb& np : EvaluateTP(c.pd, c.v)) {
      results.push_back({np.node, np.prob});
    }
    const PDocument ext = BuildViewExtension(c.pd, "v", results);
    // Plan: comp(doc(v)/lbl(v), q_(k)).
    const int k = c.v.MainBranchLength();
    const Pattern plan = ExtensionPlan("v", c.v, Suffix(c.q, k));
    std::set<PersistentId> via_plan;
    for (const NodeProb& np : EvaluateTP(ext, plan)) {
      via_plan.insert(ext.pid(np.node));
    }
    std::set<PersistentId> direct;
    for (const NodeProb& np : EvaluateTP(c.pd, c.q)) {
      direct.insert(c.pd.pid(np.node));
    }
    EXPECT_EQ(via_plan, direct) << ToXPath(c.q);
  }
}

// §5.1: ∩ q_i ≡ ∪ interleavings, checked by evaluation over sampled
// documents (both the node sets and the Boolean verdicts must agree).
class InterleavingUnion : public ::testing::TestWithParam<int> {};

TEST_P(InterleavingUnion, EvaluatesLikeTheUnion) {
  Rng rng(4242 + GetParam());
  const TpIntersection q({Tp("r//l0[l1]//l2"), Tp("r//l0[l3]//l2")});
  const auto inters = Interleavings(q);
  ASSERT_TRUE(inters.ok());
  DocGenOptions o;
  o.target_nodes = 25;
  o.label_count = 4;
  o.dist_prob = 0.3;
  const PDocument pd = RandomPDocument(rng, o);
  const SampledWorld w = SampleWorld(pd, rng);

  const std::vector<NodeId> lhs = EvaluateIntersectionNodes(q, w.doc);
  std::set<NodeId> rhs;
  for (const Pattern& i : *inters) {
    for (NodeId n : Evaluate(i, w.doc)) rhs.insert(n);
  }
  EXPECT_EQ(std::set<NodeId>(lhs.begin(), lhs.end()), rhs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleavingUnion, ::testing::Range(0, 25));

// Unfolding identity: answers retrieved by a TP∩ plan over extensions equal
// the original query's answers on every sampled world (persistent Ids).
class UnfoldingIdentity : public ::testing::TestWithParam<int> {};

TEST_P(UnfoldingIdentity, PlanRetrievalMatchesQuery) {
  Rng rng(808 + GetParam());
  const PDocument pd = PersonnelPDocument(rng, 4);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  Rewriter rewriter;
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  rewriter.AddView("laptop", Tp("IT-personnel//person/bonus[laptop]"));
  const auto rw = rewriter.FindTpi(q);
  ASSERT_TRUE(rw.has_value());
  const ViewExtensions exts = rewriter.Materialize(pd);
  std::set<PersistentId> via;
  for (const PidProb& pp : ExecuteTpiRewriting(*rw, exts)) via.insert(pp.pid);
  std::set<PersistentId> direct;
  for (const NodeProb& np : EvaluateTP(pd, q)) direct.insert(pd.pid(np.node));
  EXPECT_EQ(via, direct);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnfoldingIdentity, ::testing::Range(0, 8));

// Copy semantics: fresh pids in extensions break cross-view joins — the
// same instance that works under persistent Ids retrieves nothing when the
// extensions are materialized under copy semantics and joined by pid. This
// is exactly why §4 restricts copy semantics to single-view rewritings.
TEST(SemanticsTest, CopySemanticsBreaksIntersection) {
  const PDocument pd = paper::PDocPER();
  Rewriter rewriter;
  rewriter.AddView("rick", paper::ViewV1BON());
  rewriter.AddView("all", paper::ViewV2BON());
  ViewExtensionOptions copy;
  copy.copy_semantics = true;
  const ViewExtensions exts = rewriter.Materialize(pd, copy);
  // Join by pid across the two extensions: empty under copy semantics.
  std::set<PersistentId> rick_pids, all_pids;
  for (NodeId r : ExtensionResultRoots(exts.at("rick"))) {
    rick_pids.insert(exts.at("rick").pid(r));
  }
  for (NodeId r : ExtensionResultRoots(exts.at("all"))) {
    all_pids.insert(exts.at("all").pid(r));
  }
  std::set<PersistentId> join;
  for (PersistentId p : rick_pids) {
    if (all_pids.count(p)) join.insert(p);
  }
  EXPECT_TRUE(join.empty());
  // Under persistent Ids the join is {5}.
  const ViewExtensions persistent = rewriter.Materialize(pd);
  std::set<PersistentId> rp, ap, pjoin;
  for (NodeId r : ExtensionResultRoots(persistent.at("rick"))) {
    rp.insert(persistent.at("rick").pid(r));
  }
  for (NodeId r : ExtensionResultRoots(persistent.at("all"))) {
    ap.insert(persistent.at("all").pid(r));
  }
  for (PersistentId p : rp) {
    if (ap.count(p)) pjoin.insert(p);
  }
  EXPECT_EQ(pjoin, std::set<PersistentId>{5});
}

}  // namespace
}  // namespace pxv
