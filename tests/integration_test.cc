// End-to-end tests of the Rewriter façade: register views, materialize
// extensions, answer queries from extensions only, compare with direct
// evaluation over the original p-document.

#include <gtest/gtest.h>

#include <map>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "prob/query_eval.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"

namespace pxv {
namespace {

std::map<PersistentId, double> DirectAnswer(const PDocument& pd,
                                            const Pattern& q) {
  std::map<PersistentId, double> out;
  for (const NodeProb& np : EvaluateTP(pd, q)) out[pd.pid(np.node)] = np.prob;
  return out;
}

std::map<PersistentId, double> ToMap(const std::vector<PidProb>& results) {
  std::map<PersistentId, double> out;
  for (const PidProb& pp : results) out[pp.pid] = pp.prob;
  return out;
}

void ExpectSameAnswers(const std::map<PersistentId, double>& a,
                       const std::map<PersistentId, double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [pid, p] : a) {
    ASSERT_TRUE(b.count(pid)) << pid;
    EXPECT_NEAR(b.at(pid), p, 1e-9) << pid;
  }
}

TEST(IntegrationTest, AnswerViaSingleView) {
  Rewriter rewriter;
  rewriter.AddView("v2BON", paper::ViewV2BON());
  const PDocument pd = paper::PDocPER();
  const ViewExtensions exts = rewriter.Materialize(pd);
  const auto answer = rewriter.Answer(paper::QueryBON(), exts);
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(pd, paper::QueryBON()), ToMap(*answer));
}

TEST(IntegrationTest, AnswerViaIntersection) {
  Rewriter rewriter;
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  rewriter.AddView("all", Tp("IT-personnel//person/bonus"));
  const PDocument pd = paper::PDocPER();
  const ViewExtensions exts = rewriter.Materialize(pd);
  const Pattern q = paper::QueryRBON();
  const auto answer = rewriter.Answer(q, exts);
  ASSERT_TRUE(answer.has_value());
  ExpectSameAnswers(DirectAnswer(pd, q), ToMap(*answer));
}

TEST(IntegrationTest, UnanswerableQuery) {
  Rewriter rewriter;
  rewriter.AddView("names", Tp("IT-personnel//person/name"));
  const PDocument pd = paper::PDocPER();
  const ViewExtensions exts = rewriter.Materialize(pd);
  EXPECT_FALSE(rewriter.Answer(paper::QueryBON(), exts).has_value());
}

TEST(IntegrationTest, Example11NotAnswerable) {
  Rewriter rewriter;
  rewriter.AddView("v", paper::View11());
  const PDocument pd = paper::PDoc1();
  const ViewExtensions exts = rewriter.Materialize(pd);
  EXPECT_FALSE(rewriter.Answer(paper::Query11(), exts).has_value());
}

class IntegrationProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationProperty, PersonnelWorkload) {
  Rng rng(40 + GetParam());
  const PDocument pd = PersonnelPDocument(rng, 2 + GetParam() % 5);
  Rewriter rewriter;
  rewriter.AddView("bonuses", Tp("IT-personnel//person/bonus"));
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  const ViewExtensions exts = rewriter.Materialize(pd);
  const char* queries[] = {
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
      "IT-personnel//person/bonus",
  };
  for (const char* text : queries) {
    const Pattern q = Tp(text);
    const auto answer = rewriter.Answer(q, exts);
    ASSERT_TRUE(answer.has_value()) << text;
    ExpectSameAnswers(DirectAnswer(pd, q), ToMap(*answer));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegrationProperty, ::testing::Range(0, 10));

TEST(IntegrationTest, MaterializeProducesValidExtensions) {
  Rng rng(3);
  const PDocument pd = PersonnelPDocument(rng, 4);
  Rewriter rewriter;
  rewriter.AddView("a", Tp("IT-personnel//person/bonus"));
  rewriter.AddView("b", Tp("IT-personnel//person/name"));
  const ViewExtensions exts = rewriter.Materialize(pd);
  ASSERT_EQ(exts.size(), 2u);
  for (const auto& [name, ext] : exts) {
    EXPECT_TRUE(ext.Validate().ok()) << name;
  }
}

}  // namespace
}  // namespace pxv
