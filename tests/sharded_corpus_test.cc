// ShardedCorpus semantics (ISSUE 10 tentpole): consistent-hash routing,
// routed operations with DocumentStore's exact semantics, the cross-shard
// AnswerAll fan-out, and per-shard durability. The acceptance invariants:
//
//   * the router is deterministic across instances, reasonably balanced,
//     and minimally disruptive — adding a shard only moves keys TO the
//     new shard, never between old ones;
//   * a sharded corpus is bit-identical to a single DocumentStore twin
//     holding the same documents under the same randomized churn —
//     answers, names, everything observable;
//   * the shared ViewCatalog compiles each query shape exactly once
//     across all shards (plan-cache dedup);
//   * a concurrent Apply on shard A never tears what the fan-out serves
//     from shard B (snapshots pin before execution starts) — this test is
//     also the TSan target for the fan-out;
//   * durable shards recover independently: a torn WAL tail in shard 0
//     rolls only shard 0 back to its last durable state while shard 1
//     keeps its post-checkpoint batches.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "serve/document_store.h"
#include "serve/io_env.h"
#include "serve/sharded_corpus.h"
#include "serve/view_server.h"
#include "serve/wal.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/pxv_sharded_" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

PDocument PersonnelDoc(uint64_t seed, int persons = 8) {
  Rng rng(seed);
  return PersonnelPDocument(rng, persons, 0.3, 0.4);
}

void RegisterViews(ShardedCorpus* corpus) {
  corpus->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  corpus->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

void RegisterViews(ViewServer* server) {
  server->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

std::vector<Pattern> Queries() {
  return {Tp("IT-personnel//person/bonus"),
          Tp("IT-personnel//person[name/Rick]/bonus")};
}

// Mux alternatives (pid, current edge probability): lowering one below its
// current value always leaves the mux budget valid.
std::vector<std::pair<PersistentId, double>> MuxAlternatives(
    const PDocument& pd) {
  std::vector<std::pair<PersistentId, double>> out;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.detached(n)) continue;
    const NodeId parent = pd.parent(n);
    if (parent != kNullNode && !pd.ordinary(parent) &&
        pd.kind(parent) == PKind::kMux) {
      out.push_back({pd.pid(n), pd.edge_prob(n)});
    }
  }
  return out;
}

// Canonical form: structure + labels + pids + exact probabilities, ignoring
// arena ids and version stamps — exactly the freedoms recovery is allowed
// (the durability suite's contract, restated for the sharded corpus).
void AppendProb(double p, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", p);  // Round-trips doubles.
  *out += buf;
}

void CanonNode(const PDocument& d, NodeId n, std::string* out) {
  if (d.ordinary(n)) {
    *out += "O(";
    *out += LabelName(d.label(n));
    *out += ',';
    *out += d.pid(n) >= 0 ? std::to_string(d.pid(n)) : std::string("L");
    *out += ',';
    AppendProb(d.edge_prob(n), out);
    *out += ')';
  } else {
    *out += PKindName(d.kind(n));
    *out += '(';
    AppendProb(d.edge_prob(n), out);
    if (d.kind(n) == PKind::kExp) {
      for (const auto& [subset, p] : d.exp_distribution(n)) {
        *out += ";{";
        for (int idx : subset) {
          *out += std::to_string(idx);
          *out += ' ';
        }
        *out += "}=";
        AppendProb(p, out);
      }
    }
    *out += ')';
  }
  *out += '[';
  for (NodeId c : d.children(n)) CanonNode(d, c, out);
  *out += ']';
}

std::string Canon(const PDocument& d) {
  std::string out;
  if (!d.empty()) CanonNode(d, d.root(), &out);
  return out;
}

// A valid churn batch: lower a few mux alternatives below their CURRENT
// probability (monotone shrinking keeps every mux budget valid forever).
std::vector<DocMutation> ChurnBatch(const PDocument& pd, Rng& rng) {
  const auto alternatives = MuxAlternatives(pd);
  std::vector<DocMutation> batch;
  const int ops = 1 + int(rng.NextBounded(3));
  for (int i = 0; i < ops && !alternatives.empty(); ++i) {
    const auto& [pid, current] =
        alternatives[rng.NextBounded(alternatives.size())];
    batch.push_back(DocMutation::SetEdgeProb(pid, current * rng.NextDouble()));
  }
  return batch;
}

void ExpectSameAnswerSet(
    const std::vector<std::optional<std::vector<PidProb>>>& got,
    const std::vector<std::optional<std::vector<PidProb>>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t q = 0; q < got.size(); ++q) {
    ASSERT_EQ(got[q].has_value(), want[q].has_value());
    if (!got[q].has_value()) continue;
    ASSERT_EQ(got[q]->size(), want[q]->size());
    for (size_t i = 0; i < got[q]->size(); ++i) {
      EXPECT_EQ((*got[q])[i].pid, (*want[q])[i].pid);
      EXPECT_EQ((*got[q])[i].prob, (*want[q])[i].prob);  // Bit-identical.
    }
  }
}

TEST(CorpusRouterTest, DeterministicAcrossInstancesAndBalanced) {
  const CorpusRouter a(4);
  const CorpusRouter b(4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "doc-" + std::to_string(i);
    const int shard = a.Route(name);
    EXPECT_EQ(shard, b.Route(name));  // Pure function of (shards, replicas).
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    ++counts[size_t(shard)];
  }
  // 64 virtual nodes per shard keep the arcs reasonably even: every shard
  // owns a solid chunk of 1000 uniform keys (expected 250 each).
  for (int c : counts) EXPECT_GT(c, 80);
}

TEST(CorpusRouterTest, AddingAShardOnlyMovesKeysToTheNewShard) {
  const CorpusRouter four(4);
  const CorpusRouter five(5);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string name = "doc-" + std::to_string(i);
    const int r4 = four.Route(name);
    const int r5 = five.Route(name);
    if (r5 != r4) {
      // Consistent hashing's disruption guarantee: shard 4's ring points
      // only STEAL arcs — no key ever moves between the old shards.
      EXPECT_EQ(r5, 4);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);        // The new shard takes real load...
  EXPECT_LT(moved, 2 * 2000 / 5);  // ...but only about 1/5 of it.
}

TEST(ShardedCorpusTest, RoutedOperationsKeepDocumentStoreSemantics) {
  ShardedCorpusOptions options;
  options.shards = 3;
  ShardedCorpus corpus(options);
  RegisterViews(&corpus);

  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) {
    names.push_back("doc-" + std::to_string(i));
    ASSERT_TRUE(corpus.Put(names.back(), PersonnelDoc(100 + uint64_t(i))).ok());
  }
  // Names() merges the shards back into one sorted corpus-wide list.
  EXPECT_EQ(corpus.Names(), names);
  EXPECT_EQ(corpus.stats().documents, 6);

  for (const std::string& name : names) {
    // The routed document lives on exactly the shard the router names.
    const int shard = corpus.ShardOf(name);
    EXPECT_EQ(shard, corpus.router().Route(name));
    EXPECT_NE(corpus.store(shard).Find(name), nullptr);
    for (int s = 0; s < corpus.shard_count(); ++s) {
      if (s != shard) EXPECT_EQ(corpus.store(s).Find(name), nullptr);
    }
    EXPECT_EQ(corpus.Find(name), corpus.store(shard).Find(name));
    EXPECT_TRUE(corpus.Answer(name, Queries()[0]).has_value());
  }

  // Routed mutations apply on the owning shard; unknown names fail the
  // same way a single store fails them.
  const auto alternatives = MuxAlternatives(*corpus.Find(names[0]));
  ASSERT_FALSE(alternatives.empty());
  EXPECT_TRUE(
      corpus
          .Apply(names[0], {DocMutation::SetEdgeProb(
                               alternatives[0].first,
                               alternatives[0].second * 0.5)})
          .ok());
  EXPECT_TRUE(corpus.MaterializeIncremental(names[0]).ok());
  EXPECT_TRUE(corpus.Compact(names[0]).ok());
  EXPECT_FALSE(corpus.Answer("nope", Queries()[0]).has_value());
  EXPECT_FALSE(corpus.Apply("nope", {}).ok());
  EXPECT_FALSE(corpus.MaterializeIncremental("nope").ok());
  EXPECT_FALSE(corpus.Drop("nope").ok());
  EXPECT_EQ(corpus.Find("nope"), nullptr);

  ASSERT_TRUE(corpus.Drop(names[2]).ok());
  EXPECT_EQ(corpus.Names().size(), 5u);
  EXPECT_EQ(corpus.stats().documents, 5);
}

TEST(ShardedCorpusTest, FanOutIsBitIdenticalToSingleStoreTwinUnderChurn) {
  ShardedCorpusOptions options;
  options.shards = 3;
  options.server.threads = 2;
  ShardedCorpus corpus(options);
  RegisterViews(&corpus);
  ViewServer twin_server;
  RegisterViews(&twin_server);
  DocumentStore twin(&twin_server);

  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back("doc-" + std::to_string(i));
    const PDocument pd = PersonnelDoc(500 + uint64_t(i));
    ASSERT_TRUE(corpus.Put(names.back(), pd).ok());
    ASSERT_TRUE(twin.Put(names.back(), pd).ok());
  }
  // The 3 shards genuinely split the corpus (8 docs over 3 shards).
  int nonempty = 0;
  for (int s = 0; s < corpus.shard_count(); ++s) {
    if (!corpus.store(s).Names().empty()) ++nonempty;
  }
  EXPECT_GE(nonempty, 2);

  const std::vector<Pattern> queries = Queries();
  Rng rng(99);
  for (int round = 0; round < 4; ++round) {
    // Identical randomized churn on both sides.
    for (const std::string& name : names) {
      const std::vector<DocMutation> batch =
          ChurnBatch(*twin.Find(name), rng);
      if (batch.empty()) continue;
      ASSERT_TRUE(corpus.Apply(name, batch).ok());
      ASSERT_TRUE(twin.Apply(name, batch).ok());
      ASSERT_TRUE(corpus.MaterializeIncremental(name).ok());
      ASSERT_TRUE(twin.MaterializeIncremental(name).ok());
    }
    // One fan-out == the twin's per-document AnswerAll loop, bit for bit,
    // in deterministic (shard, document-name) order.
    const auto fan = corpus.AnswerAllDocuments(queries);
    ASSERT_EQ(fan.size(), names.size());
    std::vector<std::string> seen;
    for (size_t d = 0; d < fan.size(); ++d) {
      EXPECT_EQ(fan[d].shard, corpus.ShardOf(fan[d].doc));
      if (d > 0 && fan[d].shard == fan[d - 1].shard) {
        EXPECT_LT(fan[d - 1].doc, fan[d].doc);  // Sorted within a shard.
      }
      seen.push_back(fan[d].doc);
      ExpectSameAnswerSet(fan[d].answers, twin.AnswerAll(fan[d].doc, queries));
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, names);  // Every document answered exactly once.
  }
  EXPECT_EQ(corpus.stats().fanouts, 4);
}

TEST(ShardedCorpusTest, SharedCatalogCompilesEachQueryShapeOnce) {
  ShardedCorpusOptions options;
  options.shards = 3;
  ShardedCorpus corpus(options);
  RegisterViews(&corpus);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(corpus.Put("doc-" + std::to_string(i),
                           PersonnelDoc(700 + uint64_t(i)))
                    .ok());
  }
  const std::vector<Pattern> queries = Queries();
  for (int round = 0; round < 2; ++round) {
    const auto fan = corpus.AnswerAllDocuments(queries);
    ASSERT_EQ(fan.size(), 6u);
  }
  const ShardedCorpusStats stats = corpus.stats();
  // Compile once, execute everywhere: one miss per query shape across ALL
  // shards and rounds, everything else hits the shared cache.
  EXPECT_EQ(stats.plan_cache_misses, int64_t(queries.size()));
  EXPECT_GE(stats.plan_cache_hits,
            int64_t((6 * 2 - 1) * queries.size() - queries.size()));
  EXPECT_EQ(stats.queries, int64_t(6 * 2 * queries.size()));
  // Every shard reads the same shared totals; the corpus counts them once.
  for (int s = 0; s < corpus.shard_count(); ++s) {
    EXPECT_EQ(corpus.server(s).stats().plan_cache_misses,
              stats.plan_cache_misses);
  }
}

TEST(ShardedCorpusTest, ConcurrentApplyOnOneShardDoesNotTearAnother) {
  ShardedCorpusOptions options;
  options.shards = 2;
  options.server.threads = 2;
  ShardedCorpus corpus(options);
  RegisterViews(&corpus);

  // Find names on both shards: shard 0 gets the churn victims, shard 1 the
  // static documents whose served answers must never move.
  std::vector<std::string> churned;
  std::vector<std::string> stable;
  for (int i = 0; churned.size() < 2 || stable.size() < 2; ++i) {
    ASSERT_LT(i, 1000);
    const std::string name = "doc-" + std::to_string(i);
    std::vector<std::string>& bucket =
        corpus.ShardOf(name) == 0 ? churned : stable;
    if (bucket.size() < 2) {
      bucket.push_back(name);
      ASSERT_TRUE(corpus.Put(name, PersonnelDoc(900 + uint64_t(i))).ok());
    }
  }

  const std::vector<Pattern> queries = Queries();
  std::vector<std::vector<std::optional<std::vector<PidProb>>>> baselines;
  for (const std::string& name : stable) {
    baselines.push_back(corpus.AnswerAll(name, queries));
  }

  // Writer: sustained valid churn on shard 0's documents while the main
  // thread fans out across both shards. Snapshots pin before execution, so
  // shard 1's answers must be byte-stable throughout (TSan validates the
  // memory orders underneath).
  std::thread writer([&corpus, &churned] {
    Rng rng(4242);
    for (int iter = 0; iter < 40; ++iter) {
      for (const std::string& name : churned) {
        const std::vector<DocMutation> batch =
            ChurnBatch(*corpus.Find(name), rng);
        if (batch.empty()) continue;
        ASSERT_TRUE(corpus.Apply(name, batch).ok());
        ASSERT_TRUE(corpus.MaterializeIncremental(name).ok());
      }
    }
  });
  for (int iter = 0; iter < 20; ++iter) {
    const auto fan = corpus.AnswerAllDocuments(queries);
    ASSERT_EQ(fan.size(), 4u);
    for (const auto& doc : fan) {
      if (doc.shard != 1) continue;
      const auto it = std::find(stable.begin(), stable.end(), doc.doc);
      ASSERT_NE(it, stable.end());
      ExpectSameAnswerSet(doc.answers,
                          baselines[size_t(it - stable.begin())]);
    }
  }
  writer.join();
}

TEST(ShardedCorpusTest, DurableShardsRecoverIndependentlyAfterTornTail) {
  const std::string root = TestDir("torn");
  auto catalog = std::make_shared<ViewCatalog>();
  catalog->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  catalog->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));

  ShardedCorpusOptions options;
  options.shards = 2;
  options.store.durable_dir = root;
  options.store.fsync = FsyncPolicy::kAlways;
  options.store.checkpoint_after_wal_bytes = 0;  // Checkpoint explicitly.

  // One document per shard.
  std::string doc0;
  std::string doc1;
  {
    const CorpusRouter router(2);
    for (int i = 0; doc0.empty() || doc1.empty(); ++i) {
      ASSERT_LT(i, 1000);
      const std::string name = "doc-" + std::to_string(i);
      (router.Route(name) == 0 ? doc0 : doc1) = name;
    }
  }

  std::string doc0_at_checkpoint;
  std::string doc1_final;
  {
    auto corpus = ShardedCorpus::Open(options, catalog);
    ASSERT_TRUE(corpus.ok()) << corpus.status().message();
    ASSERT_TRUE((*corpus)->Put(doc0, PersonnelDoc(31)).ok());
    ASSERT_TRUE((*corpus)->Put(doc1, PersonnelDoc(32)).ok());
    ASSERT_TRUE((*corpus)->Checkpoint().ok());
    doc0_at_checkpoint = Canon(*(*corpus)->Find(doc0));

    // One post-checkpoint batch per shard: shard 0's will be torn away,
    // shard 1's must survive recovery untouched.
    Rng rng(55);
    for (const std::string& name : {doc0, doc1}) {
      const auto alternatives = MuxAlternatives(*(*corpus)->Find(name));
      ASSERT_FALSE(alternatives.empty());
      ASSERT_TRUE((*corpus)
                      ->Apply(name, {DocMutation::SetEdgeProb(
                                        alternatives[0].first,
                                        alternatives[0].second * 0.5)})
                      .ok());
    }
    doc1_final = Canon(*(*corpus)->Find(doc1));
    EXPECT_EQ((*corpus)->stats().store.checkpoints, 2);
  }  // Clean close.

  // Tear the tail of shard 0's newest live WAL segment, mid-record —
  // the classic crash artifact, confined to one shard's directory.
  std::string seg;
  for (uint64_t k = 1; k <= 16; ++k) {
    const std::string candidate = root + "/shard-0/" + WalSegmentFileName(k);
    if (::access(candidate.c_str(), F_OK) == 0) seg = candidate;
  }
  ASSERT_FALSE(seg.empty());
  auto read = ReadWalSegment(IoEnv::Real(), seg);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read->records.empty());
  const uint64_t cut = read->records.back().offset + 5;
  ASSERT_EQ(::truncate(seg.c_str(), off_t(cut)), 0);

  auto reopened = ShardedCorpus::Open(options, catalog);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  const ShardedCorpusStats stats = (*reopened)->stats();
  EXPECT_EQ(stats.store.recoveries, 2);
  EXPECT_EQ(stats.store.torn_records_dropped, 1);
  EXPECT_FALSE((*reopened)->read_only());
  // Shard 0 rolled back to its checkpoint; shard 1 kept its batch.
  ASSERT_NE((*reopened)->Find(doc0), nullptr);
  ASSERT_NE((*reopened)->Find(doc1), nullptr);
  EXPECT_EQ(Canon(*(*reopened)->Find(doc0)), doc0_at_checkpoint);
  EXPECT_EQ(Canon(*(*reopened)->Find(doc1)), doc1_final);
  // Both shards serve and accept writes after recovery.
  EXPECT_TRUE((*reopened)->Answer(doc0, Queries()[0]).has_value());
  EXPECT_TRUE((*reopened)->Answer(doc1, Queries()[1]).has_value());
}

}  // namespace
}  // namespace pxv
