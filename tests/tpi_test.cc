#include <gtest/gtest.h>

#include "tp/containment.h"
#include "tp/parser.h"
#include "tpi/equivalence.h"
#include "tpi/eval.h"
#include "tpi/interleaving.h"
#include "tpi/skeleton.h"
#include "xml/parser.h"

namespace pxv {
namespace {

TpIntersection In(std::initializer_list<const char*> texts) {
  TpIntersection q;
  for (const char* t : texts) q.Add(Tp(t));
  return q;
}

TEST(InterleavingTest, IdenticalMembersSingleInterleaving) {
  const auto inter = Interleavings(In({"a/b", "a/b"}));
  ASSERT_TRUE(inter.ok());
  ASSERT_EQ(inter->size(), 1u);
  EXPECT_TRUE(IsomorphicPatterns((*inter)[0], Tp("a/b")));
}

TEST(InterleavingTest, SlashForcesCoalescing) {
  // a/b ∩ a//b: b's must coalesce (outs coalesce), edge forced to /.
  const auto inter = Interleavings(In({"a/b", "a//b"}));
  ASSERT_TRUE(inter.ok());
  ASSERT_EQ(inter->size(), 1u);
  EXPECT_TRUE(IsomorphicPatterns((*inter)[0], Tp("a/b")));
}

TEST(InterleavingTest, DescendantsOrderOrCoalesce) {
  // a//b//c ∩ a//b//c with distinct predicates: the middle b's can coalesce
  // or stack in two orders.
  const auto inter = Interleavings(In({"a//b[x]//c", "a//b[y]//c"}));
  ASSERT_TRUE(inter.ok());
  // Coalesced: a//b[x][y]//c; stacked: a//b[x]//b[y]//c and a//b[y]//b[x]//c.
  EXPECT_EQ(inter->size(), 3u);
}

TEST(InterleavingTest, RootLabelMismatchUnsatisfiable) {
  EXPECT_FALSE(IntersectionSatisfiable(In({"a/b", "x/b"})));
  const auto inter = Interleavings(In({"a/b", "x/b"}));
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter->empty());
}

TEST(InterleavingTest, DepthConflictUnsatisfiable) {
  // a/b (out at depth 2) vs a/c/b (out at depth 3), all /-edges.
  EXPECT_FALSE(IntersectionSatisfiable(In({"a/b", "a/c/b"})));
}

TEST(InterleavingTest, OutLabelMismatchUnsatisfiable) {
  EXPECT_FALSE(IntersectionSatisfiable(In({"a/b", "a/c"})));
}

TEST(InterleavingTest, SatisfiableMixedDepths) {
  EXPECT_TRUE(IntersectionSatisfiable(In({"a//b", "a/c/b"})));
  const auto inter = Interleavings(In({"a//b", "a/c/b"}));
  ASSERT_TRUE(inter.ok());
  ASSERT_EQ(inter->size(), 1u);
  EXPECT_TRUE(IsomorphicPatterns((*inter)[0], Tp("a/c/b")));
}

TEST(InterleavingTest, CountGrowsExponentially) {
  // k copies of a//b[p_i]//c: interleavings grow combinatorially in k.
  TpIntersection q2 = In({"a//b[p1]//c", "a//b[p2]//c"});
  TpIntersection q3 = In({"a//b[p1]//c", "a//b[p2]//c", "a//b[p3]//c"});
  const int64_t c2 = CountInterleavings(q2, 1000000);
  const int64_t c3 = CountInterleavings(q3, 1000000);
  EXPECT_GT(c3, 2 * c2);
}

TEST(InterleavingTest, PredicatesCarriedIntoMerge) {
  const auto inter = Interleavings(In({"a[x]/b", "a[y]/b[z]"}));
  ASSERT_TRUE(inter.ok());
  ASSERT_EQ(inter->size(), 1u);
  EXPECT_TRUE(IsomorphicPatterns((*inter)[0], Tp("a[x][y]/b[z]")));
}

TEST(UnionFreeMergeTest, MergesSharedBranch) {
  const Pattern merged = UnionFreeMerge(In({"a[x]/b[y]/c", "a/b[z]/c[w]"}));
  EXPECT_TRUE(IsomorphicPatterns(merged, Tp("a[x]/b[y][z]/c[w]")));
}

TEST(EquivalenceTest, TpContainedInIntersection) {
  EXPECT_TRUE(
      TpContainedInIntersection(Tp("a[x][y]/b"), In({"a[x]/b", "a[y]/b"})));
  EXPECT_FALSE(
      TpContainedInIntersection(Tp("a[x]/b"), In({"a[x]/b", "a[y]/b"})));
}

TEST(EquivalenceTest, IntersectionEquivalentToMergedTp) {
  EXPECT_TRUE(
      EquivalentTpIntersection(Tp("a[x][y]/b"), In({"a[x]/b", "a[y]/b"})));
  EXPECT_FALSE(
      EquivalentTpIntersection(Tp("a[x]/b"), In({"a[x]/b", "a[y]/b"})));
}

TEST(EquivalenceTest, DescendantIntersectionNotEquivalentToNaiveMerge) {
  // a//b[x]//c ∩ a//b[y]//c is a union of three interleavings; the naive
  // merge a//b[x][y]//c is strictly contained in it.
  const TpIntersection in = In({"a//b[x]//c", "a//b[y]//c"});
  EXPECT_FALSE(EquivalentTpIntersection(Tp("a//b[x][y]//c"), in));
  EXPECT_TRUE(TpContainedInIntersection(Tp("a//b[x][y]//c"), in));
}

TEST(EquivalenceTest, Example16Views) {
  // v1 ∩ v2 ≡ q for q = a[1]/b[2]/c[3]/d (the paper notes v1, v2 suffice
  // for a deterministic rewriting).
  const TpIntersection in = In({"a[1]/b/c[3]/d", "a/b[2]/c[3]/d"});
  EXPECT_TRUE(EquivalentTpIntersection(Tp("a[1]/b[2]/c[3]/d"), in));
}

TEST(SkeletonTest, PaperPositiveExamples) {
  EXPECT_TRUE(IsExtendedSkeleton(Tp("a[b//c//d]/e//d")));
  EXPECT_TRUE(IsExtendedSkeleton(Tp("a[b//c]/d//e")));
}

TEST(SkeletonTest, PaperNegativeExamples) {
  EXPECT_FALSE(IsExtendedSkeleton(Tp("a[b//c]/b//d")));
  EXPECT_FALSE(IsExtendedSkeleton(Tp("a[b//c]//d")));
  EXPECT_FALSE(IsExtendedSkeleton(Tp("a[.//b]/c//d")));
  EXPECT_FALSE(IsExtendedSkeleton(Tp("a[.//b]//c")));
}

TEST(SkeletonTest, SlashOnlyPredicatesUnrestricted) {
  EXPECT_TRUE(IsExtendedSkeleton(Tp("a[b/c][d]/e//f[g/h]")));
  EXPECT_TRUE(IsExtendedSkeleton(Tp("a/b/c")));
  EXPECT_TRUE(IsExtendedSkeleton(Tp("a//b//c")));
}

TEST(SkeletonTest, PaperRunningQueries) {
  // The running example's queries use only /-predicates: all skeletons.
  EXPECT_TRUE(IsExtendedSkeleton(Tp("IT-personnel//person[name/Rick]/bonus")));
  EXPECT_TRUE(
      IsExtendedSkeleton(Tp("IT-personnel//person/bonus[laptop]")));
}

TEST(TpiEvalTest, IntersectionOverOneDocument) {
  const auto d = ParseTreeText("a(b(x, y), b(x))");
  ASSERT_TRUE(d.ok());
  const auto r = EvaluateIntersectionNodes(In({"a/b[x]", "a/b[y]"}), *d);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(d->pid(r[0]), 1);
}

TEST(TpiEvalTest, IntersectionByPidAcrossDocuments) {
  // Two "view extension" documents sharing pids (tree-text needs quoting
  // for parenthesized labels).
  const auto d1 = ParseTreeText("\"doc(v1)\"(b#5(x), b#7(x))");
  const auto d2 = ParseTreeText("\"doc(v2)\"(b#5(y))");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  const TpIntersection q = In({"doc(v1)/b[x]", "doc(v2)/b[y]"});
  const auto pids =
      EvaluateIntersectionByPid(q, {&d1.value(), &d2.value()});
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], 5);
}

TEST(TpiEvalTest, MemberWithoutDocumentYieldsEmpty) {
  const auto d1 = ParseTreeText("\"doc(v1)\"(b#5)");
  ASSERT_TRUE(d1.ok());
  const TpIntersection q = In({"doc(v1)/b", "doc(v2)/b"});
  EXPECT_TRUE(EvaluateIntersectionByPid(q, {&d1.value()}).empty());
}

}  // namespace
}  // namespace pxv
