#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/rational.h"
#include "linalg/solver.h"

namespace pxv {
namespace {

TEST(RationalTest, Normalization) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 5), Rational(0));
}

TEST(RationalTest, Arithmetic) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(RationalTest, ToDoubleAndString) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).ToDouble(), 0.25);
  EXPECT_EQ(Rational(3, 2).ToString(), "3/2");
  EXPECT_EQ(Rational(7).ToString(), "7");
}

std::vector<Rational> Row(std::initializer_list<int> values) {
  std::vector<Rational> out;
  for (int v : values) out.push_back(Rational(v));
  return out;
}

TEST(RankTest, FullAndDeficient) {
  EXPECT_EQ(Rank(Matrix::FromRows({Row({1, 0}), Row({0, 1})})), 2);
  EXPECT_EQ(Rank(Matrix::FromRows({Row({1, 1}), Row({2, 2})})), 1);
  EXPECT_EQ(Rank(Matrix::FromRows({Row({0, 0})})), 0);
  EXPECT_EQ(Rank(Matrix::FromRows(
                {Row({1, 1, 0}), Row({0, 1, 1}), Row({1, 0, -1})})),
            2);
}

TEST(ExpressTest, SimpleCombination) {
  const auto c = ExpressInRowSpace({Row({1, 0}), Row({0, 1})}, Row({3, 4}));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], Rational(3));
  EXPECT_EQ((*c)[1], Rational(4));
}

TEST(ExpressTest, NotInRowSpace) {
  EXPECT_FALSE(
      ExpressInRowSpace({Row({1, 1, 0})}, Row({1, 0, 0})).has_value());
}

TEST(ExpressTest, FractionalCoefficients) {
  // Example 16's system shape: rows P+1+3, P+2+3, P+1+2, P;
  // target P+1+2+3 = (r1+r2+r3-r4)/2.
  const std::vector<std::vector<Rational>> rows = {
      Row({1, 1, 0, 1}),
      Row({1, 0, 1, 1}),
      Row({1, 1, 1, 0}),
      Row({1, 0, 0, 0}),
  };
  const auto c = ExpressInRowSpace(rows, Row({1, 1, 1, 1}));
  ASSERT_TRUE(c.has_value());
  // Verify the combination reproduces the target.
  for (int j = 0; j < 4; ++j) {
    Rational sum(0);
    for (int i = 0; i < 4; ++i) sum = sum + (*c)[i] * rows[i][j];
    EXPECT_EQ(sum, Rational(1)) << "column " << j;
  }
}

TEST(ExpressTest, UnderdeterminedStillFindsWitness) {
  // Redundant rows: a witness exists even though coefficients are not
  // unique.
  const std::vector<std::vector<Rational>> rows = {
      Row({1, 1}), Row({1, 1}), Row({0, 1})};
  const auto c = ExpressInRowSpace(rows, Row({2, 3}));
  ASSERT_TRUE(c.has_value());
  Rational s0(0), s1(0);
  for (int i = 0; i < 3; ++i) {
    s0 = s0 + (*c)[i] * rows[i][0];
    s1 = s1 + (*c)[i] * rows[i][1];
  }
  EXPECT_EQ(s0, Rational(2));
  EXPECT_EQ(s1, Rational(3));
}

TEST(ExpressTest, EmptyRows) {
  EXPECT_TRUE(ExpressInRowSpace({}, Row({0, 0})).has_value());
  EXPECT_FALSE(ExpressInRowSpace({}, Row({1, 0})).has_value());
}

TEST(MatrixTest, FromRowsAndAccess) {
  const Matrix m = Matrix::FromRows({Row({1, 2}), Row({3, 4})});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.at(1, 0), Rational(3));
  EXPECT_EQ(m.Row(0)[1], Rational(2));
}

}  // namespace
}  // namespace pxv
