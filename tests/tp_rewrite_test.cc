#include <gtest/gtest.h>

#include "gen/paper.h"
#include "rewrite/tp_rewrite.h"
#include "tp/containment.h"
#include "tp/ops.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// Fact 1 on the running example: comp(v1_BON, bonus[laptop]) ≡ q_RBON.
TEST(Fact1Test, PaperRunningExample) {
  EXPECT_TRUE(
      HasDeterministicTpRewriting(paper::QueryRBON(), paper::ViewV1BON()));
  EXPECT_TRUE(
      HasDeterministicTpRewriting(paper::QueryBON(), paper::ViewV2BON()));
}

TEST(Fact1Test, Example11HasDeterministicRewriting) {
  // Example 11: a deterministic rewriting exists (comp(v, q_(2)) ≡ q) even
  // though no probabilistic one does.
  EXPECT_TRUE(HasDeterministicTpRewriting(paper::Query11(), paper::View11()));
}

TEST(Fact1Test, Example12HasDeterministicRewriting) {
  EXPECT_TRUE(HasDeterministicTpRewriting(paper::Query12(), paper::View12()));
}

TEST(Fact1Test, Negatives) {
  // View selecting the wrong label at the compensation depth.
  EXPECT_FALSE(HasDeterministicTpRewriting(Tp("a/b/c"), Tp("a/c")));
  // View more restrictive than the query: unfolding adds predicates.
  EXPECT_FALSE(HasDeterministicTpRewriting(Tp("a/b"), Tp("a[x]/b")));
  // View deeper than the query.
  EXPECT_FALSE(HasDeterministicTpRewriting(Tp("a/b"), Tp("a/b/c")));
  // Root mismatch.
  EXPECT_FALSE(HasDeterministicTpRewriting(Tp("a/b"), Tp("x/b")));
}

TEST(Fact1Test, ViewMoreGeneralButCompensable) {
  // v = a//b, q = a/b[c]: comp(v, b[c]) = a//b[c] ≢ q.
  EXPECT_FALSE(HasDeterministicTpRewriting(Tp("a/b[c]"), Tp("a//b")));
  // v = a/b, q = a/b[c]: comp adds [c]: ≡ q.
  EXPECT_TRUE(HasDeterministicTpRewriting(Tp("a/b[c]"), Tp("a/b")));
}

TEST(TPrewriteTest, AcceptsRunningExample) {
  const std::vector<NamedView> views = {{"v1BON", paper::ViewV1BON()},
                                        {"v2BON", paper::ViewV2BON()}};
  // q_BON is rewritable using v2_BON (Example 13).
  const auto rws = TPrewrite(paper::QueryBON(), views);
  ASSERT_EQ(rws.size(), 1u);
  EXPECT_EQ(rws[0].view_name, "v2BON");
  EXPECT_TRUE(rws[0].restricted);
  EXPECT_EQ(rws[0].k, 3);
}

TEST(TPrewriteTest, QRBONUsesV1) {
  const std::vector<NamedView> views = {{"v1BON", paper::ViewV1BON()},
                                        {"v2BON", paper::ViewV2BON()}};
  const auto rws = TPrewrite(paper::QueryRBON(), views);
  // Only v1BON works: compensation can add conditions at or below depth k
  // but never the [name/Rick] predicate at depth 2, so v2BON fails Fact 1.
  ASSERT_EQ(rws.size(), 1u);
  EXPECT_EQ(rws[0].view_name, "v1BON");
  EXPECT_TRUE(rws[0].restricted);  // The compensation is //-free.
}

// Example 11: deterministic rewriting exists, probabilistic does not —
// TPrewrite must reject (v' ̸⊥ q'').
TEST(TPrewriteTest, RejectsExample11) {
  const auto rws =
      TPrewrite(paper::Query11(), {{"v", paper::View11()}});
  EXPECT_TRUE(rws.empty());
}

// Example 12: the prefix-suffix condition bites — u = 2 and the first node
// of the last token carries [e].
TEST(TPrewriteTest, RejectsExample12) {
  const auto rws =
      TPrewrite(paper::Query12(), {{"v", paper::View12()}});
  EXPECT_TRUE(rws.empty());
}

// Variant of Example 12 without the offending predicate: u = 2, first u−1
// token nodes clean ⇒ accepted as an unrestricted rewriting.
TEST(TPrewriteTest, AcceptsCleanPrefixSuffix) {
  const Pattern q = Tp("a//b/c/b/c[e]//d");
  const Pattern v = Tp("a//b/c/b/c[e]");
  const auto rws = TPrewrite(q, {{"v", v}});
  ASSERT_EQ(rws.size(), 1u);
  EXPECT_FALSE(rws[0].restricted);
  EXPECT_EQ(rws[0].u, 2);
}

TEST(TPrewriteTest, RestrictedFlagFollowsDefinition) {
  // mb(v) //-free ⇒ restricted even with // compensation.
  const Pattern q1 = Tp("a/b//c");
  const auto rws1 = TPrewrite(q1, {{"v", Tp("a/b")}});
  ASSERT_EQ(rws1.size(), 1u);
  EXPECT_TRUE(rws1[0].restricted);
  // // in both view mb and compensation ⇒ unrestricted.
  const Pattern q2 = Tp("a//b//c");
  const auto rws2 = TPrewrite(q2, {{"v", Tp("a//b")}});
  ASSERT_EQ(rws2.size(), 1u);
  EXPECT_FALSE(rws2[0].restricted);
}

TEST(TPrewriteTest, PlanShape) {
  const auto rws = TPrewrite(paper::QueryBON(), {{"v2BON", paper::ViewV2BON()}});
  ASSERT_EQ(rws.size(), 1u);
  // Plan: doc(v2BON)/bonus[laptop].
  EXPECT_EQ(ToXPath(rws[0].plan), "doc(v2BON)/bonus[laptop]");
}

TEST(TPrewriteTest, IgnoresUnusableViews) {
  const std::vector<NamedView> views = {
      {"decoy1", Tp("a/x")},
      {"decoy2", Tp("IT-personnel//name")},
      {"v2BON", paper::ViewV2BON()},
  };
  const auto rws = TPrewrite(paper::QueryBON(), views);
  ASSERT_EQ(rws.size(), 1u);
  EXPECT_EQ(rws[0].view_name, "v2BON");
}

TEST(TPrewriteTest, ViewEqualToQuery) {
  // The query itself as a view: trivial rewriting with empty compensation.
  const Pattern q = paper::QueryBON();
  const auto rws = TPrewrite(q, {{"self", q}});
  ASSERT_EQ(rws.size(), 1u);
  EXPECT_EQ(rws[0].k, q.MainBranchLength());
}

}  // namespace
}  // namespace pxv
