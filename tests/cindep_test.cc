#include <gtest/gtest.h>

#include "gen/docgen.h"
#include "gen/paper.h"
#include "pxml/parser.h"
#include "rewrite/cindependence.h"
#include "tp/ops.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// Paper §4.1: q_BON ⊥ v1_BON.
TEST(CIndepTest, PaperPositive) {
  EXPECT_TRUE(CIndependent(paper::QueryBON(), paper::ViewV1BON()));
}

// Paper §4.1: a[b] and a[c] are not c-independent (a mux can correlate).
TEST(CIndepTest, PaperNegativeSameNode) {
  EXPECT_FALSE(CIndependent(Tp("a[b]/x"), Tp("a[c]/x")));
}

// Example 11: v' = a[.//c]/b and q'' = a/b[c] are not c-independent.
TEST(CIndepTest, PaperExample11) {
  const Pattern v = paper::View11();
  const Pattern q = paper::Query11();
  const Pattern v_prime = StripOutPredicates(v);
  const Pattern q_dprime = QDoublePrime(q, 2);
  EXPECT_FALSE(CIndependent(v_prime, q_dprime));
}

// A query is not c-independent of itself unless its predicates are trivial.
TEST(CIndepTest, SelfDependence) {
  EXPECT_FALSE(CIndependent(Tp("a[b]/x"), Tp("a[b]/x")));
  EXPECT_TRUE(CIndependent(Tp("a/x"), Tp("a/x")));  // No predicates at all.
}

TEST(CIndepTest, PredicatesAtDifferentDepthsNoReach) {
  // [p] at depth 1 cannot reach below the depth-2 node through a /-edge
  // with a different label: independent.
  EXPECT_TRUE(CIndependent(Tp("a[p]/b/c"), Tp("a/b[q]/c")));
  // But a //-predicate reaches everywhere: dependent.
  EXPECT_FALSE(CIndependent(Tp("a[.//p]/b/c"), Tp("a/b[q]/c")));
}

TEST(CIndepTest, ReachThroughMatchingLabels) {
  // [b/q] at the root: its chain can step onto the main branch b at depth 2
  // and continue below — where [q] of the other query lives: dependent.
  EXPECT_FALSE(CIndependent(Tp("a[b/q]/b/c"), Tp("a/b[q]/c")));
  // With a non-matching first label the chain dies at once: independent.
  EXPECT_TRUE(CIndependent(Tp("a[x/q]/b/c"), Tp("a/b[q]/c")));
}

TEST(CIndepTest, DescendantGapWithPadding) {
  // A pure /-chain predicate can descend through the // gap's padding, but
  // it can only enter b's subtree by stepping onto b itself — its labels
  // never match b, so it stays above: independent.
  EXPECT_TRUE(CIndependent(Tp("a[x/y/z]//b/c"), Tp("a//b[q]/c")));
  // With a //-edge inside the predicate it can jump below b: dependent.
  EXPECT_FALSE(CIndependent(Tp("a[x//w]//b/c"), Tp("a//b[w]/c")));
  // A /-chain that does pass through b's label reaches below b: dependent.
  EXPECT_FALSE(CIndependent(Tp("a[b/w]/b/c"), Tp("a/b[w]/c")));
}

TEST(CIndepTest, DisjointLabelsIndependent) {
  EXPECT_TRUE(CIndependent(Tp("a[x]/b/c"), Tp("a/b[y]/c")));
  EXPECT_TRUE(CIndependent(Tp("a/b[x]/c"), Tp("a[y]/b/c")));
}

TEST(CIndepTest, NoCommonAlignmentVacuouslyIndependent) {
  // Main branches cannot align on any document node: vacuously independent.
  EXPECT_TRUE(CIndependent(Tp("a/b[x]"), Tp("a/c/b[y]")));
}

// Theorem 4 reduction behaviour: views from disjoint hyperedges are
// c-independent; views sharing a vertex are not.
TEST(CIndepTest, MatchingViewsBehaviour) {
  const Pattern e1 = Tp("a[p0]/a[p1]/a/a//b");
  const Pattern e2 = Tp("a/a/a[p2]/a[p3]//b");
  const Pattern e3 = Tp("a/a[p1]/a[p2]/a//b");
  EXPECT_TRUE(CIndependent(e1, e2));   // Disjoint {0,1} vs {2,3}.
  EXPECT_FALSE(CIndependent(e1, e3));  // Share vertex 1.
  EXPECT_FALSE(CIndependent(e2, e3));  // Share vertex 2.
}

// Oracle agreement: the syntactic verdicts match the probabilistic
// definition on the paper's documents.
TEST(CIndepTest, OracleAgreementOnPaperDocs) {
  // Independent pair on P̂_PER.
  EXPECT_TRUE(
      CIndependentOn(paper::PDocPER(), paper::QueryBON(), paper::ViewV1BON()));
  // Dependent pair witnessed on a mux document.
  const auto pd = ParsePDocument("a(mux(b@0.5, c@0.5), x)");
  ASSERT_TRUE(pd.ok());
  EXPECT_FALSE(CIndependentOn(*pd, Tp("a[b]/x"), Tp("a[c]/x")));
}

// Soundness property: whenever the syntactic test declares independence,
// the definitional equation holds on random p-documents.
class CIndepSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CIndepSoundness, SyntacticIndependenceHoldsSemantically) {
  Rng rng(333 + GetParam());
  // Draw small random query pairs over a tiny alphabet so collisions and
  // correlations are likely.
  const char* pool[] = {
      "a[b]/x",       "a[c]/x",        "a/x",          "a[.//b]/x",
      "a[b/c]/x",     "a//x",          "a[b]//x",      "a/m/x",
      "a[b]/m/x",     "a/m[c]/x",      "a[.//c]/m/x",  "a/m[b/c]/x",
  };
  const Pattern q1 = Tp(pool[rng.NextBounded(12)]);
  const Pattern q2 = Tp(pool[rng.NextBounded(12)]);
  if (!CIndependent(q1, q2)) return;  // Only soundness is asserted here.
  // Structured battery: chains with mux/ind combinations of b, c under a/m/x.
  const char* docs[] = {
      "a(mux(b@0.5, c@0.5), x, m(x))",
      "a(ind(b@0.5, c@0.4), x(b), m(x(c)))",
      "a(b(c), mux(x@0.7), m(mux(x@0.5, b@0.3)))",
      "a(mux(m(x(b))@0.6, c@0.2), x)",
      "a(m(mux(b@0.5, c@0.5), x), x(c))",
  };
  for (const char* text : docs) {
    const auto pd = ParsePDocument(text);
    ASSERT_TRUE(pd.ok()) << text;
    EXPECT_TRUE(CIndependentOn(*pd, q1, q2))
        << ToXPath(q1) << " vs " << ToXPath(q2) << " on " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CIndepSoundness, ::testing::Range(0, 40));

}  // namespace
}  // namespace pxv
