#include <gtest/gtest.h>

#include "gen/paper.h"
#include "tp/containment.h"
#include "tp/minimize.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// Paper §2: q_RBON ⊑ v2_BON, q_RBON ⊑ q_BON, q_RBON ⊑ v1_BON; neither of
// q_BON, v1_BON is contained in the other.
TEST(ContainmentTest, PaperStatements) {
  const Pattern qrbon = paper::QueryRBON();
  const Pattern qbon = paper::QueryBON();
  const Pattern v1 = paper::ViewV1BON();
  const Pattern v2 = paper::ViewV2BON();
  EXPECT_TRUE(Contains(v2, qrbon));
  EXPECT_TRUE(Contains(qbon, qrbon));
  EXPECT_TRUE(Contains(v1, qrbon));
  EXPECT_FALSE(Contains(qbon, v1));
  EXPECT_FALSE(Contains(v1, qbon));
}

TEST(ContainmentTest, Reflexive) {
  for (const char* t : {"a/b", "a//b[c]", "a[.//x]/b//c[d/e]"}) {
    const Pattern q = Tp(t);
    EXPECT_TRUE(Contains(q, q)) << t;
    EXPECT_TRUE(Equivalent(q, q)) << t;
  }
}

TEST(ContainmentTest, ChildImpliesDescendant) {
  EXPECT_TRUE(Contains(Tp("a//b"), Tp("a/b")));
  EXPECT_FALSE(Contains(Tp("a/b"), Tp("a//b")));
}

TEST(ContainmentTest, DroppingPredicateGeneralizes) {
  EXPECT_TRUE(Contains(Tp("a/b"), Tp("a[c]/b")));
  EXPECT_FALSE(Contains(Tp("a[c]/b"), Tp("a/b")));
}

TEST(ContainmentTest, LabelMismatch) {
  EXPECT_FALSE(Contains(Tp("a/b"), Tp("a/c")));
  EXPECT_FALSE(Contains(Tp("x/b"), Tp("a/b")));
}

TEST(ContainmentTest, OutPositionMatters) {
  Pattern q1 = Tp("a/b/c");
  Pattern q2 = Tp("a/b/c");
  q2.SetOut(q2.MainBranch()[1]);
  EXPECT_FALSE(Contains(q1, q2));
  EXPECT_FALSE(Contains(q2, q1));
}

TEST(ContainmentTest, DescendantChains) {
  EXPECT_TRUE(Contains(Tp("a//c"), Tp("a//b//c")));
  EXPECT_TRUE(Contains(Tp("a//c"), Tp("a/b/c")));
  EXPECT_FALSE(Contains(Tp("a//b//c"), Tp("a//c")));
}

TEST(ContainmentTest, PredicateStructure) {
  EXPECT_TRUE(Contains(Tp("a[b]/x"), Tp("a[b/c]/x")));
  EXPECT_FALSE(Contains(Tp("a[b/c]/x"), Tp("a[b]/x")));
  EXPECT_TRUE(Contains(Tp("a[.//c]/x"), Tp("a[b/c]/x")));
}

// A case where the homomorphism test is incomplete but canonical models
// decide correctly (folklore Miklau–Suciu-style example): the pattern
// a[b/c][.//c] — the //-predicate is implied by the /-one.
TEST(ContainmentTest, CanonicalModelCompleteness) {
  const Pattern with_both = Tp("a[b/c][.//c]/x");
  const Pattern just_slash = Tp("a[b/c]/x");
  EXPECT_TRUE(Contains(with_both, just_slash));
  EXPECT_TRUE(Contains(just_slash, with_both));
  EXPECT_TRUE(Equivalent(with_both, just_slash));
}

// Classic incompleteness witness for homomorphisms:
//   q1 = a//b[c] ⊓ shape vs q2 = a//b[c]/... — use the known example
//   p = a[.//b[c/d]][.//b[d/e]]  vs  q = a[.//b[c/d][d/e]]-free variant.
// Here: every model of p1 = a/b//c/d matches p2 = a/b//c//d (trivially) and
// the hom exists; sanity-check agreement of the two paths on a battery.
TEST(ContainmentTest, HomAgreesWithExactOnBattery) {
  const char* patterns[] = {
      "a/b",        "a//b",      "a/b[c]",   "a//b[c]",      "a/b/c",
      "a//b//c",    "a[b]/c",    "a[.//b]/c", "a/b[c][d]",   "a//b[c/d]",
  };
  for (const char* s1 : patterns) {
    for (const char* s2 : patterns) {
      const Pattern p1 = Tp(s1), p2 = Tp(s2);
      if (ContainsHom(p2, p1)) {
        EXPECT_TRUE(Contains(p2, p1)) << s1 << " vs " << s2;
      }
    }
  }
}

TEST(ContainmentTest, MapOutImages) {
  const Pattern q = Tp("a//b");
  const Pattern host = Tp("a/x[b]/b");
  // out(q)=b can map to the main-branch b and to the predicate b.
  EXPECT_EQ(MapOutImages(q, host).size(), 2u);
}

TEST(ContainmentTest, LongestChildChain) {
  EXPECT_EQ(LongestChildChain(Tp("a/b/c")), 2);
  EXPECT_EQ(LongestChildChain(Tp("a//b")), 0);
  EXPECT_EQ(LongestChildChain(Tp("a//b/c[d/e/f]")), 4);
}

TEST(MinimizeTest, RemovesSubsumedPredicate) {
  // [.//c] is implied by [b/c].
  const Pattern q = Tp("a[b/c][.//c]/x");
  const Pattern m = Minimize(q);
  EXPECT_TRUE(Equivalent(q, m));
  EXPECT_EQ(m.size(), 4);  // a, b, c, x.
  EXPECT_TRUE(IsMinimal(m));
}

TEST(MinimizeTest, RemovesDuplicatePredicate) {
  const Pattern q = Tp("a[b][b]/x");
  const Pattern m = Minimize(q);
  EXPECT_EQ(m.size(), 3);
  EXPECT_TRUE(Equivalent(q, m));
}

TEST(MinimizeTest, KeepsIndependentPredicates) {
  const Pattern q = Tp("a[b][c]/x");
  EXPECT_TRUE(IsMinimal(q));
  EXPECT_EQ(Minimize(q).size(), q.size());
}

TEST(MinimizeTest, MinimizedEquivalenceIsIsomorphism) {
  const Pattern a = Minimize(Tp("a[b/c][.//c]/x"));
  const Pattern b = Minimize(Tp("a[b/c]/x"));
  EXPECT_TRUE(IsomorphicPatterns(a, b));
}

TEST(MinimizeTest, PaperQueriesAreMinimal) {
  EXPECT_TRUE(IsMinimal(paper::QueryRBON()));
  EXPECT_TRUE(IsMinimal(paper::QueryBON()));
  EXPECT_TRUE(IsMinimal(paper::ViewV1BON()));
  EXPECT_TRUE(IsMinimal(paper::ViewV2BON()));
}

TEST(RemoveSubtreeTest, Basic) {
  const Pattern q = Tp("a[b][c]/x");
  // Find the b predicate.
  PNodeId b = kNullPNode;
  for (PNodeId n = 0; n < q.size(); ++n) {
    if (LabelName(q.label(n)) == "b") b = n;
  }
  ASSERT_NE(b, kNullPNode);
  const Pattern r = RemoveSubtree(q, b);
  EXPECT_EQ(r.size(), 3);
  EXPECT_TRUE(Contains(r, q));
}

}  // namespace
}  // namespace pxv
