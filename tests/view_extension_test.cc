#include <gtest/gtest.h>

#include "gen/paper.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/view_extension.h"
#include "pxml/worlds.h"
#include "tp/parser.h"
#include "xml/label.h"

namespace pxv {
namespace {

ViewExtensions MaterializeOne(const PDocument& pd, const char* name,
                              const Pattern& v,
                              const ViewExtensionOptions& options = {}) {
  std::vector<ViewResultEntry> results;
  for (const NodeProb& np : EvaluateTP(pd, v)) {
    results.push_back({np.node, np.prob});
  }
  ViewExtensions exts;
  exts.emplace(name, BuildViewExtension(pd, name, results, options));
  return exts;
}

// Example 8: (P̂_PER)_{v1BON} bundles the bonus[5] subtree under an
// ind-node with probability 0.75, plus Id(n) markers.
TEST(ViewExtensionTest, PaperExample8) {
  const PDocument pd = paper::PDocPER();
  const auto exts = MaterializeOne(pd, "v1BON", paper::ViewV1BON());
  const PDocument& ext = exts.at("v1BON");
  EXPECT_TRUE(ext.Validate().ok());
  EXPECT_EQ(LabelName(ext.label(ext.root())), "doc(v1BON)");

  const auto roots = ExtensionResultRoots(ext);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(ext.pid(roots[0]), 5);
  EXPECT_NEAR(ext.edge_prob(roots[0]), 0.75, 1e-12);
  // Markers present: the bonus root carries an Id(5) child.
  bool has_marker = false;
  for (NodeId c : ext.children(roots[0])) {
    if (ext.ordinary(c) && ext.label(c) == IdMarkerLabel(5)) has_marker = true;
  }
  EXPECT_TRUE(has_marker);
}

// Example 8 continued: (P̂_PER)_{v2BON} has two result subtrees, both with
// edge probability 1.
TEST(ViewExtensionTest, PaperExample8V2) {
  const PDocument pd = paper::PDocPER();
  const auto exts = MaterializeOne(pd, "v2BON", paper::ViewV2BON());
  const PDocument& ext = exts.at("v2BON");
  const auto roots = ExtensionResultRoots(ext);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(ext.pid(roots[0]), 5);
  EXPECT_EQ(ext.pid(roots[1]), 7);
  EXPECT_NEAR(ext.edge_prob(roots[0]), 1.0, 1e-12);
  EXPECT_NEAR(ext.edge_prob(roots[1]), 1.0, 1e-12);
}

// Example 11's indistinguishability: (P̂1)_v = (P̂2)_v.
TEST(ViewExtensionTest, Example11ExtensionsEqual) {
  const Pattern v = paper::View11();
  const auto e1 = MaterializeOne(paper::PDoc1(), "v", v);
  const auto e2 = MaterializeOne(paper::PDoc2(), "v", v);
  EXPECT_EQ(ToPText(e1.at("v"), /*with_pids=*/true),
            ToPText(e2.at("v"), /*with_pids=*/true));
}

// Example 12's indistinguishability: (P̂3)_v = (P̂4)_v.
TEST(ViewExtensionTest, Example12ExtensionsEqual) {
  const Pattern v = paper::View12();
  const auto e3 = MaterializeOne(paper::PDoc3(), "v", v);
  const auto e4 = MaterializeOne(paper::PDoc4(), "v", v);
  EXPECT_EQ(ToPText(e3.at("v"), /*with_pids=*/true),
            ToPText(e4.at("v"), /*with_pids=*/true));
}

TEST(ViewExtensionTest, CopySemanticsFreshPidsKeepMarkers) {
  const PDocument pd = paper::PDocPER();
  ViewExtensionOptions options;
  options.copy_semantics = true;
  const auto exts = MaterializeOne(pd, "v1BON", paper::ViewV1BON(), options);
  const PDocument& ext = exts.at("v1BON");
  const auto roots = ExtensionResultRoots(ext);
  ASSERT_EQ(roots.size(), 1u);
  // Fresh (negative) pid, but the Id(5) marker still names the original.
  EXPECT_LT(ext.pid(roots[0]), 0);
  bool has_marker = false;
  for (NodeId c : ext.children(roots[0])) {
    if (ext.ordinary(c) && ext.label(c) == IdMarkerLabel(5)) has_marker = true;
  }
  EXPECT_TRUE(has_marker);
}

TEST(ViewExtensionTest, NoMarkersOption) {
  const PDocument pd = paper::PDocPER();
  ViewExtensionOptions options;
  options.add_id_markers = false;
  const auto exts = MaterializeOne(pd, "v1BON", paper::ViewV1BON(), options);
  const PDocument& ext = exts.at("v1BON");
  for (NodeId n = 0; n < ext.size(); ++n) {
    if (ext.ordinary(n)) {
      EXPECT_FALSE(IsIdMarkerLabel(ext.label(n)));
    }
  }
}

TEST(ViewExtensionTest, EmptyResultSet) {
  const PDocument pd = paper::PDocPER();
  const PDocument ext = BuildViewExtension(pd, "empty", {});
  EXPECT_TRUE(ExtensionResultRoots(ext).empty());
}

TEST(ViewExtensionTest, NestedResultsShareStructure) {
  // A view selecting both an ancestor and a descendant: both subtrees appear
  // and the descendant's pid occurs twice (§3.1's multiple occurrences).
  const PDocument pd = paper::PDoc3();
  const auto exts = MaterializeOne(pd, "v", paper::View12());
  const PDocument& ext = exts.at("v");
  const auto roots = ExtensionResultRoots(ext);
  ASSERT_EQ(roots.size(), 2u);
  int occurrences = 0;
  for (NodeId n = 0; n < ext.size(); ++n) {
    if (ext.ordinary(n) && ext.pid(n) == paper::kPid12_C3) ++occurrences;
  }
  EXPECT_EQ(occurrences, 2);
}

TEST(ViewExtensionTest, ExtensionIsQueryableByPlan) {
  // doc(v)/bonus over the v2BON extension retrieves both bonus subtrees.
  const PDocument pd = paper::PDocPER();
  const auto exts = MaterializeOne(pd, "v2BON", paper::ViewV2BON());
  const Pattern plan = Tp("doc(v2BON)/bonus");
  const auto results = EvaluateTP(exts.at("v2BON"), plan);
  EXPECT_EQ(results.size(), 2u);
}

}  // namespace
}  // namespace pxv
