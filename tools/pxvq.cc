// pxvq — command-line front end for the library.
//
//   pxvq eval    <pdoc-file> <query>                 q(P̂) with probabilities
//   pxvq worlds  <pdoc-file> [max]                   enumerate ⟦P̂⟧
//   pxvq answer  <pdoc-file> <query> name=def ...    answer q from views only
//   pxvq rewrite <query> name=def ...                decide rewritability
//   pxvq plan    <pdoc-file> <query> name=def ...    costed answer plans
//   pxvq update  <pdoc-file> <script> <query> name=def ...
//                                                    mutate + incremental
//                                                    re-materialization
//   pxvq compact <pdoc-file> [script]                mutate, then force a
//                                                    tombstone compaction
//   pxvq circuit <pdoc-file> <query>                 compile the lineage
//                                                    circuit, print its shape
//   pxvq explain <pdoc-file> <query> [top-k]         top-k driving edges
//                                                    per answer (∂Pr/∂p)
//   pxvq wal-dump <durable-dir>                      list checkpoints + WAL
//                                                    records with CRC status
//   pxvq recover <durable-dir> [--checkpoint] [name=def ...]
//                                                    replay the log, report
//                                                    the recovered documents
//   pxvq whatif  <pdoc-file> <query> pid=p [pid:child@slot=p ...]
//                                                    hypothetical answers
//                                                    under probability
//                                                    overrides, uncommitted
//   pxvq shards  [--shards=N] [--durable=<dir>] [name=def ...] [pdoc ...]
//                                                    route documents over a
//                                                    sharded corpus, print
//                                                    per-shard state
//
// `pxvq update --durable=<dir> ...` runs the update against a durable store
// rooted at <dir> (write-ahead logged, crash-recoverable via `recover`).
// `pxvq update --shards=N ...` routes the same update through an N-shard
// corpus (consistent-hash document router, shared view catalog) instead of
// a single store; the two compose.
//
// What-if overrides address probabilities like mutations address nodes:
// `12=0.5` sets the edge probability of pid 12; `7:0@2=0.25` sets subset
// slot 2 of the exp node that is child 0 of pid 7. Nothing is committed —
// the command prints baseline and hypothetical probabilities side by side.
//
// p-Document files use the text notation of pxml/parser.h, e.g.
//   a(mux(b(c)@0.25, d@0.5), ind(e@0.75), f)
// Queries and views use XPath notation, e.g. a//b[c]/d.
//
// Update scripts are line-oriented; '#' at the start of a line or after
// whitespace begins a comment (mid-token '#' is the pid separator of the
// p-document notation, e.g. an insert payload's label#pid), and a blank
// line closes the current mutation batch (each batch applies
// transactionally and is followed by one incremental re-materialization):
//   setedge <pid> <prob>
//   remove  <pid>
//   insert  <parent-pid> <prob> <p-document-text>
//   setexp  <pid>:<child-index> <prob>@<i,j,...> [<prob>@<...> ...]
// Insert payload nodes must carry pids that are fresh for the document
// (write them explicitly: label#pid); colliding pids reject the batch.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "prob/circuit_backend.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/worlds.h"
#include "rewrite/rewriter.h"
#include "serve/checkpoint.h"
#include "serve/document_store.h"
#include "serve/sharded_corpus.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "xml/parser.h"

using namespace pxv;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pxvq eval    <pdoc-file> <query>\n"
               "  pxvq worlds  <pdoc-file> [max]\n"
               "  pxvq answer  <pdoc-file> <query> name=def [name=def ...]\n"
               "  pxvq rewrite <query> name=def [name=def ...]\n"
               "  pxvq plan    <pdoc-file> <query> name=def [name=def ...]\n"
               "  pxvq update  [--durable=<dir>] [--shards=N] <pdoc-file> "
               "<script-file> <query> name=def [name=def ...]\n"
               "  pxvq compact <pdoc-file> [script-file]\n"
               "  pxvq circuit <pdoc-file> <query> [query ...]\n"
               "  pxvq explain <pdoc-file> <query> [top-k]\n"
               "  pxvq wal-dump <durable-dir>\n"
               "  pxvq recover <durable-dir> [--checkpoint] "
               "[name=def ...]\n"
               "  pxvq whatif  <pdoc-file> <query> pid=p "
               "[pid:child@slot=p ...]\n"
               "  pxvq shards  [--shards=N] [--durable=<dir>] "
               "[name=def ...] [pdoc-file ...]\n");
  return 2;
}

StatusOr<PDocument> LoadPDoc(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::Error(std::string("cannot open ") + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParsePDocument(buf.str());
}

bool ParseNamedView(const std::string& arg, Rewriter* rewriter) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const auto def = ParsePattern(arg.substr(eq + 1));
  if (!def.ok()) {
    std::fprintf(stderr, "bad view '%s': %s\n", arg.c_str(),
                 def.status().message().c_str());
    return false;
  }
  rewriter->AddView(arg.substr(0, eq), *def);
  return true;
}

int CmdEval(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  for (const NodeProb& np : EvaluateTP(*pd, *q)) {
    std::printf("pid=%lld  Pr=%.10g\n",
                static_cast<long long>(pd->pid(np.node)), np.prob);
  }
  return 0;
}

int CmdWorlds(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const int max = argc > 3 ? std::atoi(argv[3]) : 1000;
  const auto worlds = EnumerateWorlds(*pd, max);
  if (!worlds.ok()) {
    std::fprintf(stderr, "%s\n", worlds.status().message().c_str());
    return 1;
  }
  for (const World& w : *worlds) {
    std::printf("%.10g\t%s\n", w.prob, ToTreeText(w.doc).c_str());
  }
  return 0;
}

int CmdAnswer(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 4; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const ViewExtensions exts = rewriter.Materialize(*pd);
  const auto answer = rewriter.Answer(*q, exts);
  if (!answer.has_value()) {
    std::fprintf(stderr,
                 "no probabilistic rewriting exists over these views\n");
    return 3;
  }
  for (const PidProb& pp : *answer) {
    std::printf("pid=%lld  Pr=%.10g\n", static_cast<long long>(pp.pid),
                pp.prob);
  }
  return 0;
}

int CmdRewrite(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto q = ParsePattern(argv[2]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 3; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const auto tp = rewriter.FindTp(*q);
  for (const TpRewriting& rw : tp) {
    std::printf("TP  via %-12s %s  %s\n", rw.view_name.c_str(),
                ToXPath(rw.plan).c_str(),
                rw.restricted ? "[restricted]" : "[unrestricted]");
  }
  const auto tpi = rewriter.FindTpi(*q);
  if (tpi.has_value()) {
    std::printf("TP∩ canonical plan, %zu members, exponents:",
                tpi->members.size());
    for (const Rational& c : tpi->coefficients) {
      std::printf(" %s", c.ToString().c_str());
    }
    std::printf("\n");
  }
  if (tp.empty() && !tpi.has_value()) {
    std::printf("no probabilistic rewriting\n");
    return 3;
  }
  return 0;
}

// Materializes the views, compiles the query, and shows every AnswerPlan
// candidate with its estimated cost plus the planner's pick.
int CmdPlan(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 4; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const ViewExtensions exts = rewriter.Materialize(*pd);
  for (const auto& [name, ext] : exts) {
    std::printf("extension %-20s live %d node(s), exp-dp-cost %.0f\n",
                name.c_str(), ext.live_size(), ext.ExpDpCost());
  }
  const QueryPlan plan = rewriter.Compile(*q);
  std::printf("fingerprint %016llx, %zu candidate plan(s)\n",
              static_cast<unsigned long long>(plan.fingerprint),
              plan.candidates.size());
  const int pick = SelectPlan(plan, exts);
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const auto cost = EstimateCost(plan.candidates[i], exts);
    std::printf("  [%zu] %-50s %s%s\n", i,
                plan.candidates[i].DebugString().c_str(),
                cost.has_value() ? ("cost " + std::to_string(*cost)).c_str()
                                 : "not executable (extension missing)",
                static_cast<int>(i) == pick ? "   ← selected" : "");
  }
  if (pick < 0) {
    std::printf("no executable plan over the materialized extensions\n");
    return 3;
  }
  return 0;
}

// Strips a script comment: '#' opens one only at the start of the line or
// after whitespace — a mid-token '#' is the pid separator of the
// p-document notation (insert payloads carry explicit label#pid nodes),
// which a naive find('#') cut would silently truncate to pid-less nodes.
void StripComment(std::string* line) {
  for (size_t i = 0; i < line->size(); ++i) {
    if ((*line)[i] != '#') continue;
    if (i == 0 || (*line)[i - 1] == ' ' || (*line)[i - 1] == '\t') {
      line->resize(i);
      return;
    }
  }
}

// Parses "<pid>" or "<pid>:<child-index>" into (pid, index or -1).
bool ParseTarget(const std::string& token, PersistentId* pid, int* child) {
  *child = -1;
  const size_t colon = token.find(':');
  try {
    *pid = std::stoll(token.substr(0, colon));
    if (colon != std::string::npos) {
      *child = std::stoi(token.substr(colon + 1));
    }
  } catch (...) {
    return false;
  }
  return true;
}

// Parses one script line into a mutation. Returns false (with a message on
// stderr) on malformed input.
bool ParseMutation(const std::string& line, DocMutation* out) {
  std::istringstream in(line);
  std::string op, target;
  in >> op >> target;
  PersistentId pid;
  int child;
  if (!ParseTarget(target, &pid, &child)) {
    std::fprintf(stderr, "bad target '%s' in: %s\n", target.c_str(),
                 line.c_str());
    return false;
  }
  if (op == "setedge") {
    double p;
    if (!(in >> p)) {
      std::fprintf(stderr, "setedge needs a probability: %s\n", line.c_str());
      return false;
    }
    if (child >= 0) {
      std::fprintf(stderr,
                   "setedge takes a plain pid (mux/ind alternatives carry "
                   "their own): %s\n",
                   line.c_str());
      return false;
    }
    *out = DocMutation::SetEdgeProb(pid, p);
    return true;
  }
  if (op == "remove") {
    *out = DocMutation::RemoveSubtree(pid);
    return true;
  }
  if (op == "insert") {
    double p;
    if (!(in >> p)) {
      std::fprintf(stderr, "insert needs a probability: %s\n", line.c_str());
      return false;
    }
    std::string ptext;
    std::getline(in, ptext);
    const auto sub = ParsePDocument(ptext);
    if (!sub.ok()) {
      std::fprintf(stderr, "bad insert payload: %s\n",
                   sub.status().message().c_str());
      return false;
    }
    *out = DocMutation::InsertSubtree(pid, *sub, p);
    return true;
  }
  if (op == "setexp") {
    if (child < 0) {
      std::fprintf(stderr, "setexp target needs <pid>:<child-index>: %s\n",
                   line.c_str());
      return false;
    }
    std::vector<std::pair<std::vector<int>, double>> dist;
    std::string entry;
    while (in >> entry) {
      const size_t at = entry.find('@');
      if (at == std::string::npos) {
        std::fprintf(stderr, "setexp entry needs <prob>@<i,j,...>: %s\n",
                     entry.c_str());
        return false;
      }
      std::vector<int> subset;
      try {
        const double p = std::stod(entry.substr(0, at));
        std::istringstream idx(entry.substr(at + 1));
        std::string tok;
        while (std::getline(idx, tok, ',')) {
          if (!tok.empty()) subset.push_back(std::stoi(tok));
        }
        dist.emplace_back(std::move(subset), p);
      } catch (...) {
        std::fprintf(stderr, "bad setexp entry: %s\n", entry.c_str());
        return false;
      }
    }
    *out = DocMutation::SetExpDistribution(pid, child, std::move(dist));
    return true;
  }
  std::fprintf(stderr, "unknown mutation '%s'\n", op.c_str());
  return false;
}

// Drives a line-oriented mutation script through `apply` — any routed
// Apply seam: a DocumentStore, a ShardedCorpus, anything with its
// transactional semantics. One batch per blank-line-separated block.
// Rejected batches are reported and skipped (an outcome, not a tool
// failure); `after_batch` runs after every *applied* batch (may be null)
// and returning false from it — or a malformed script line — aborts as a
// tool failure.
bool RunScript(
    std::istream& script,
    const std::function<StatusOr<uint64_t>(const std::vector<DocMutation>&)>&
        apply,
    const std::function<bool(int batch_no, size_t mutations, uint64_t uid)>&
        after_batch) {
  std::vector<DocMutation> batch;
  int batch_no = 0;
  const auto flush = [&]() -> bool {
    if (batch.empty()) return true;
    ++batch_no;
    const size_t mutations = batch.size();
    const auto applied = apply(batch);
    batch.clear();
    if (!applied.ok()) {
      std::fprintf(stderr, "batch %d rejected (rolled back): %s\n", batch_no,
                   applied.status().message().c_str());
      return true;  // A rejected batch is an outcome, not a tool failure.
    }
    return after_batch == nullptr || after_batch(batch_no, mutations, *applied);
  };
  std::string line;
  while (std::getline(script, line)) {
    StripComment(&line);
    const bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (blank) {
      if (!flush()) return false;
      continue;
    }
    DocMutation m;
    if (!ParseMutation(line, &m)) return false;
    batch.push_back(std::move(m));
  }
  return flush();
}

// ---------------------------------------------------------- stats text ----
// Shared between the single-store and sharded update paths (and the
// `shards` command) so the two stacks report identically.

void PrintAnswers(const std::vector<PidProb>& answers) {
  for (const PidProb& pp : answers) {
    std::printf("pid=%lld  Pr=%.10g\n", static_cast<long long>(pp.pid),
                pp.prob);
  }
}

void PrintStoreLine(const DocumentStoreStats& stats,
                    const SubtreeCacheStats& cache) {
  std::printf(
      "store: %lld batch(es), %lld mutation(s), %lld rejected; views "
      "patched %lld / rebuilt %lld / clean %lld; subtree memo %llu hits, "
      "%llu stores\n",
      static_cast<long long>(stats.batches),
      static_cast<long long>(stats.mutations),
      static_cast<long long>(stats.rejected_batches),
      static_cast<long long>(stats.views_patched),
      static_cast<long long>(stats.views_rebuilt),
      static_cast<long long>(stats.views_clean),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.stores));
}

void PrintDocLine(const PDocument& doc, const DocumentStoreStats& stats) {
  std::printf(
      "doc: arena %d node(s), %d live, %d detached; %lld compaction(s) "
      "reclaimed %lld node(s)\n",
      doc.size(), doc.live_size(), doc.detached_count(),
      static_cast<long long>(stats.compactions),
      static_cast<long long>(stats.nodes_reclaimed));
}

void PrintDurabilityLine(const DocumentStoreStats& stats) {
  std::printf(
      "durability: %lld WAL append(s), %lld byte(s), %lld checkpoint(s), "
      "%lld recovery(ies), %lld torn record(s) dropped, read-only=%lld\n",
      static_cast<long long>(stats.wal_appends),
      static_cast<long long>(stats.wal_bytes),
      static_cast<long long>(stats.checkpoints),
      static_cast<long long>(stats.recoveries),
      static_cast<long long>(stats.torn_records_dropped),
      static_cast<long long>(stats.read_only));
}

// Per-shard table + corpus roll-up: document counts, WAL bytes, and the
// SHARED plan cache (one catalog across the shards, counted once).
void PrintShardInfos(const ShardedCorpus& corpus) {
  for (const ShardedCorpus::ShardInfo& info : corpus.ShardInfos()) {
    std::printf(
        "shard %d: %zu document(s), %lld batch(es), %lld WAL byte(s), "
        "%lld quer(y/ies)\n",
        info.shard, info.docs.size(),
        static_cast<long long>(info.store.batches),
        static_cast<long long>(info.store.wal_bytes),
        static_cast<long long>(info.queries));
    for (const std::string& doc : info.docs) {
      std::printf("  doc=%s\n", doc.c_str());
    }
  }
  const ShardedCorpusStats stats = corpus.stats();
  std::printf(
      "corpus: %lld document(s), %lld fan-out(s), %lld what-if(s); shared "
      "plan cache %lld hit(s) / %lld miss(es) / %lld plan(s)\n",
      static_cast<long long>(stats.documents),
      static_cast<long long>(stats.fanouts),
      static_cast<long long>(stats.whatifs),
      static_cast<long long>(stats.plan_cache_hits),
      static_cast<long long>(stats.plan_cache_misses),
      static_cast<long long>(stats.plan_cache_size));
}

// End-to-end exercise of the store/update layer: load the document,
// register the views, then run the script — each batch applies
// transactionally and re-materializes incrementally — and finally answer
// the query from the last published snapshot. With --shards=N the same
// update routes through an N-shard corpus (the document lands on the
// shard the router names; the views live in the shared catalog); with
// --durable=<dir> every shard (or the single store) is write-ahead
// logged under <dir>.
int CmdUpdate(int argc, char** argv) {
  int arg = 2;
  std::string durable_dir;
  int shards = 0;  // 0: plain single store; >= 1: route via ShardedCorpus.
  while (argc > arg) {
    const std::string flag = argv[arg];
    if (flag.rfind("--durable=", 0) == 0) {
      durable_dir = flag.substr(10);
      ++arg;
    } else if (flag.rfind("--shards=", 0) == 0) {
      shards = std::atoi(flag.c_str() + 9);
      if (shards < 1) {
        std::fprintf(stderr, "--shards needs a positive count\n");
        return 2;
      }
      ++arg;
    } else {
      break;
    }
  }
  if (argc < arg + 4) return Usage();
  const auto pd = LoadPDoc(argv[arg]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  std::ifstream script(argv[arg + 1]);
  if (!script) {
    std::fprintf(stderr, "cannot open %s\n", argv[arg + 1]);
    return 1;
  }
  const auto q = ParsePattern(argv[arg + 2]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter parsed;  // Reuse the name=def parser, then copy into the stack.
  for (int i = arg + 3; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &parsed)) return Usage();
  }

  // The two serving stacks behind one seam: routed put / apply /
  // rematerialize closures, so the script driver and the reporting below
  // are identical for a single store and a sharded corpus.
  ViewServer server;
  std::unique_ptr<DocumentStore> store;
  std::unique_ptr<ShardedCorpus> corpus;
  if (shards > 0) {
    auto catalog = std::make_shared<ViewCatalog>();
    for (const NamedView& v : parsed.views()) {
      catalog->AddView(v.name, v.def.Clone());
    }
    ShardedCorpusOptions options;
    options.shards = shards;
    if (durable_dir.empty()) {
      corpus = std::make_unique<ShardedCorpus>(options, catalog);
    } else {
      options.store.durable_dir = durable_dir;
      auto opened = ShardedCorpus::Open(options, catalog);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().message().c_str());
        return 1;
      }
      corpus = std::move(*opened);
    }
  } else {
    for (const NamedView& v : parsed.views()) {
      server.AddView(v.name, v.def.Clone());
    }
    if (durable_dir.empty()) {
      store = std::make_unique<DocumentStore>(&server);
    } else {
      DocumentStoreOptions options;
      options.durable_dir = durable_dir;
      auto opened = DocumentStore::Open(&server, options);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().message().c_str());
        return 1;
      }
      store = std::move(opened.value());
    }
  }
  const auto apply = [&](const std::vector<DocMutation>& batch) {
    return corpus != nullptr ? corpus->Apply("doc", batch)
                             : store->Apply("doc", batch);
  };
  const auto rematerialize_doc = [&]() {
    return corpus != nullptr ? corpus->MaterializeIncremental("doc")
                             : store->MaterializeIncremental("doc");
  };
  // The owning shard's store — the single store when unsharded — for the
  // per-document introspection below (Find, session cache stats).
  const auto doc_store = [&]() -> DocumentStore& {
    return corpus != nullptr ? corpus->store(corpus->ShardOf("doc")) : *store;
  };

  if (Status s = corpus != nullptr ? corpus->Put("doc", *pd)
                                   : store->Put("doc", *pd);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  if (corpus != nullptr) {
    std::printf("routing: doc -> shard %d of %d\n", corpus->ShardOf("doc"),
                corpus->shard_count());
  }

  const auto report = [&](int batch_no, size_t mutations, uint64_t uid) {
    if (Status s = rematerialize_doc(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return false;
    }
    std::printf("batch %d: %zu mutation(s) applied, uid %llu\n", batch_no,
                mutations, static_cast<unsigned long long>(uid));
    return true;
  };
  if (!RunScript(script, apply, report)) return 1;

  const auto answer = corpus != nullptr ? corpus->Answer("doc", *q)
                                        : store->Answer("doc", *q);
  if (!answer.has_value()) {
    std::fprintf(stderr,
                 "no probabilistic rewriting exists over these views\n");
    return 3;
  }
  PrintAnswers(*answer);
  const DocumentStoreStats stats = doc_store().stats();
  PrintStoreLine(stats, doc_store().SessionCacheStats("doc"));
  PrintDocLine(*doc_store().Find("doc"), stats);
  if (!durable_dir.empty()) PrintDurabilityLine(stats);
  if (corpus != nullptr) PrintShardInfos(*corpus);
  return 0;
}

// Lists a durable directory's checkpoints and WAL segments record by
// record: lsn, kind, target document, body size, CRC verdict — and where
// the valid prefix of a segment ends when a torn or corrupt frame cut the
// listing short.
int CmdWalDump(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[2];
  IoEnv* env = IoEnv::Real();
  const auto listing = env->ListDir(dir);
  if (!listing.ok()) {
    std::fprintf(stderr, "%s\n", listing.status().message().c_str());
    return 1;
  }
  std::vector<uint64_t> ckpts;
  std::vector<uint64_t> segments;
  for (const std::string& file : *listing) {
    uint64_t seq = 0;
    if (ParseCheckpointFileName(file, &seq)) ckpts.push_back(seq);
    if (ParseWalSegmentFileName(file, &seq)) segments.push_back(seq);
  }
  std::sort(ckpts.begin(), ckpts.end());
  std::sort(segments.begin(), segments.end());
  for (const uint64_t seq : ckpts) {
    const std::string name = CheckpointFileName(seq);
    const auto data = ReadCheckpointFile(env, dir + "/" + name);
    if (!data.ok()) {
      std::printf("%s  CORRUPT: %s\n", name.c_str(),
                  data.status().message().c_str());
      continue;
    }
    std::printf("%s  %zu document(s), covers wal segments < %llu\n",
                name.c_str(), data->docs.size(),
                static_cast<unsigned long long>(data->wal_seq));
    for (const CheckpointDoc& cd : data->docs) {
      std::printf("  doc=%-20s last_lsn=%-8llu %zu byte(s)\n",
                  cd.name.c_str(),
                  static_cast<unsigned long long>(cd.last_lsn),
                  cd.doc_image.size());
    }
  }
  for (const uint64_t seq : segments) {
    const std::string name = WalSegmentFileName(seq);
    const auto bytes = env->ReadFile(dir + "/" + name);
    if (!bytes.ok()) {
      std::printf("%s  UNREADABLE: %s\n", name.c_str(),
                  bytes.status().message().c_str());
      continue;
    }
    const WalReadResult read = DecodeWalSegment(*bytes);
    std::printf("%s  %zu record(s), %llu/%zu byte(s) valid\n", name.c_str(),
                read.records.size(),
                static_cast<unsigned long long>(read.valid_bytes),
                bytes->size());
    for (const WalRecord& record : read.records) {
      std::printf("  lsn=%-8llu %-8s doc=%-20s %zu byte(s)  crc=ok\n",
                  static_cast<unsigned long long>(record.lsn),
                  WalRecordKindName(record.kind), record.doc.c_str(),
                  record.body.size());
    }
    if (read.torn_tail_dropped != 0) {
      std::printf(
          "  torn/corrupt frame at offset %llu  crc=BAD (%zu trailing "
          "byte(s) dropped at recovery)\n",
          static_cast<unsigned long long>(read.valid_bytes),
          bytes->size() - static_cast<size_t>(read.valid_bytes));
    }
  }
  if (ckpts.empty() && segments.empty()) {
    std::printf("no checkpoints or WAL segments in %s\n", dir.c_str());
  }
  return 0;
}

// Opens a durable directory — the same checkpoint + WAL-tail replay a
// restart performs — and reports what came back. With --checkpoint the
// recovered state is immediately re-checkpointed, truncating the log.
int CmdRecover(int argc, char** argv) {
  if (argc < 3) return Usage();
  bool do_checkpoint = false;
  ViewServer server;
  {
    Rewriter parsed;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--checkpoint") {
        do_checkpoint = true;
        continue;
      }
      if (!ParseNamedView(argv[i], &parsed)) return Usage();
    }
    for (const NamedView& v : parsed.views()) {
      server.AddView(v.name, v.def.Clone());
    }
  }
  DocumentStoreOptions options;
  options.durable_dir = argv[2];
  auto store = DocumentStore::Open(&server, options);
  if (!store.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 store.status().message().c_str());
    return 1;
  }
  const DocumentStoreStats stats = (*store)->stats();
  std::printf("recovered %zu document(s); %lld torn record(s) dropped\n",
              (*store)->Names().size(),
              static_cast<long long>(stats.torn_records_dropped));
  for (const std::string& name : (*store)->Names()) {
    const PDocument* doc = (*store)->Find(name);
    std::printf("  doc=%-20s arena %d node(s), %d live, %d detached\n",
                name.c_str(), doc->size(), doc->live_size(),
                doc->detached_count());
  }
  if (do_checkpoint) {
    if (Status s = (*store)->Checkpoint(); !s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.message().c_str());
      return 1;
    }
    std::printf("checkpointed: WAL truncated\n");
  }
  return 0;
}

// Applies an optional mutation script to the document, then forces one
// tombstone compaction and reports what it reclaimed. The automatic
// threshold (Apply compacts once detached > live) is reported too, so the
// command doubles as a dry-run probe of the serving store's behavior.
int CmdCompact(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  ViewServer server;  // No views: compaction concerns only the document.
  DocumentStoreOptions options;
  options.compact_documents = false;  // Manual: this command IS the trigger.
  DocumentStore store(&server, options);
  if (Status s = store.Put("doc", *pd); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  if (argc > 3) {
    std::ifstream script(argv[3]);
    if (!script) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 1;
    }
    const auto apply = [&store](const std::vector<DocMutation>& batch) {
      return store.Apply("doc", batch);
    };
    if (!RunScript(script, apply, nullptr)) return 1;
  }
  const PDocument* doc = store.Find("doc");
  const int size = doc->size();
  const int detached = doc->detached_count();
  std::printf("before: arena %d node(s), %d live, %d detached%s\n", size,
              doc->live_size(), detached,
              detached * 2 > size ? "  (over the serving threshold)" : "");
  const auto reclaimed = store.Compact("doc");
  if (!reclaimed.ok()) {
    std::fprintf(stderr, "%s\n", reclaimed.status().message().c_str());
    return 1;
  }
  std::printf("compacted: reclaimed %d node(s); arena now %d node(s), all "
              "live\n",
              *reclaimed, doc->size());
  std::printf("%s\n", ToPText(*doc, /*with_pids=*/true).c_str());
  return 0;
}

// Registers every query on one shared lineage circuit over the document
// and prints the merged shape: pool/live gate counts, the shared/private
// split with the sharing ratio, input/guard/level/root counts, and the
// resident memory footprint.
int CmdCircuit(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  std::vector<Pattern> queries;
  for (int i = 3; i < argc; ++i) {
    auto q = ParsePattern(argv[i]);
    if (!q.ok()) {
      std::fprintf(stderr, "bad query '%s': %s\n", argv[i],
                   q.status().message().c_str());
      return 1;
    }
    queries.push_back(std::move(*q));
  }
  CircuitBackend backend;
  int served = 0;
  for (const Pattern& query : queries) {
    const auto answers = backend.BatchAnchored(*pd, {&query});
    if (!answers.ok()) {
      std::fprintf(stderr, "'%s': %s\n", query.CanonicalString().c_str(),
                   answers.status().message().c_str());
      continue;
    }
    ++served;
  }
  if (served == 0) return 3;
  const LineageCircuit::Stats s = backend.shared_stats();
  std::printf("queries:  %d served, %zu on the shared circuit\n", served,
              s.registrations);
  if (s.registrations < size_t(served)) {
    std::printf("          %zu over the gate cap (plain DP per call)\n",
                size_t(served) - s.registrations);
  }
  std::printf("gates:    %zu in pool, %zu live\n", s.pool_gates, s.live_gates);
  std::printf("shared:   %zu gates (%.1f%% of live), %zu private\n",
              s.shared_gates,
              s.live_gates == 0 ? 0.0
                                : 100.0 * double(s.shared_gates) /
                                      double(s.live_gates),
              s.private_gates);
  std::printf("inputs:   %zu\n", s.live_inputs);
  std::printf("guards:   %zu\n", s.guards);
  std::printf("levels:   %zu\n", s.levels);
  std::printf("outputs:  %zu (across %zu root group(s))\n", s.outputs,
              s.roots);
  std::printf("memory:   %zu bytes\n", s.memory_bytes);
  return 0;
}

// For every answer node, prints the top-k inputs by |∂Pr(answer)/∂p| — the
// probabilities whose perturbation moves that answer the most. Backed by
// the circuit's reverse-mode sweep (prob/circuit.h, Sensitivities).
int CmdExplain(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  const int top_k = argc > 4 ? std::atoi(argv[4]) : 5;
  CircuitBackend backend;
  const Pattern& query = *q;
  const auto answers = backend.BatchAnchored(*pd, {&query});
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().message().c_str());
    return 3;
  }
  for (const NodeProb& np : *answers) {
    std::printf("answer pid=%lld  Pr=%.10g\n",
                static_cast<long long>(pd->pid(np.node)), np.prob);
    const auto sens = backend.Sensitivities(*pd, {&query}, np.node);
    if (!sens.ok()) {
      std::fprintf(stderr, "%s\n", sens.status().message().c_str());
      return 3;
    }
    int shown = 0;
    for (const LineageCircuit::Sensitivity& s : *sens) {
      if (shown++ >= top_k) break;
      if (s.input.kind == CircuitInput::Kind::kEdgeProb) {
        std::printf("  edge pid=%lld          p=%.10g  dPr/dp=%+.10g\n",
                    static_cast<long long>(pd->pid(s.input.node)), s.value,
                    s.grad);
      } else {
        std::printf("  exp  pid=%lld slot=%d  p=%.10g  dPr/dp=%+.10g\n",
                    static_cast<long long>(pd->pid(s.input.node)),
                    s.input.index, s.value, s.grad);
      }
    }
    if (sens->empty()) std::printf("  (no probabilistic inputs)\n");
  }
  return 0;
}

// Parses one what-if override token: "<pid>=<prob>" (edge) or
// "<pid>:<child>@<slot>=<prob>" (exp subset slot).
bool ParseWhatIfChange(const std::string& token, WhatIfChange* out) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  double prob;
  PersistentId pid;
  try {
    prob = std::stod(token.substr(eq + 1));
    const std::string lhs = token.substr(0, eq);
    const size_t colon = lhs.find(':');
    if (colon == std::string::npos) {
      pid = std::stoll(lhs);
      *out = WhatIfChange::Edge(pid, prob);
      return true;
    }
    const size_t at = lhs.find('@', colon + 1);
    if (at == std::string::npos) return false;
    pid = std::stoll(lhs.substr(0, colon));
    const int child = std::stoi(lhs.substr(colon + 1, at - colon - 1));
    const int slot = std::stoi(lhs.substr(at + 1));
    *out = WhatIfChange::ExpSlot(pid, child, slot, prob);
    return true;
  } catch (...) {
    return false;
  }
}

// Hypothetical serving: baseline and what-if probabilities side by side,
// served through the lineage circuit's overlay re-propagation (mutated-copy
// fallback when an override flips a recorded guard). Nothing is committed.
int CmdWhatIf(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  std::vector<WhatIfChange> changes;
  for (int i = 4; i < argc; ++i) {
    WhatIfChange change;
    if (!ParseWhatIfChange(argv[i], &change)) {
      std::fprintf(stderr,
                   "bad override '%s' (want pid=p or pid:child@slot=p)\n",
                   argv[i]);
      return Usage();
    }
    changes.push_back(change);
  }
  ViewServer server;
  const auto baseline = server.WhatIf(*pd, *q, {});
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().message().c_str());
    return 1;
  }
  const auto hypothetical = server.WhatIf(*pd, *q, changes);
  if (!hypothetical.ok()) {
    std::fprintf(stderr, "%s\n", hypothetical.status().message().c_str());
    return 1;
  }
  // Candidates may enter or leave the answer set (the > eps inclusion
  // filter), so print the union keyed by pid, in baseline-then-new order.
  std::vector<std::pair<PersistentId, std::pair<double, double>>> rows;
  for (const PidProb& pp : *baseline) {
    rows.push_back({pp.pid, {pp.prob, 0.0}});
  }
  for (const PidProb& pp : *hypothetical) {
    bool found = false;
    for (auto& row : rows) {
      if (row.first == pp.pid) {
        row.second.second = pp.prob;
        found = true;
        break;
      }
    }
    if (!found) rows.push_back({pp.pid, {0.0, pp.prob}});
  }
  for (const auto& [pid, probs] : rows) {
    std::printf("pid=%lld  Pr=%.10g -> %.10g  (%+.10g)\n",
                static_cast<long long>(pid), probs.first, probs.second,
                probs.second - probs.first);
  }
  return 0;
}

// Routes documents over an N-shard corpus — or reopens a durable one —
// and prints the per-shard table: who owns what, WAL bytes, and the shared
// plan cache. With views registered, every view definition is also run as
// a query through one cross-shard fan-out, so the cache-hit column shows
// compile-once-execute-everywhere in action.
int CmdShards(int argc, char** argv) {
  int arg = 2;
  int shards = 2;
  std::string durable_dir;
  while (argc > arg) {
    const std::string flag = argv[arg];
    if (flag.rfind("--shards=", 0) == 0) {
      shards = std::atoi(flag.c_str() + 9);
      if (shards < 1) {
        std::fprintf(stderr, "--shards needs a positive count\n");
        return 2;
      }
      ++arg;
    } else if (flag.rfind("--durable=", 0) == 0) {
      durable_dir = flag.substr(10);
      ++arg;
    } else {
      break;
    }
  }
  Rewriter parsed;
  std::vector<const char*> files;
  for (int i = arg; i < argc; ++i) {
    if (std::string(argv[i]).find('=') != std::string::npos) {
      if (!ParseNamedView(argv[i], &parsed)) return Usage();
    } else {
      files.push_back(argv[i]);
    }
  }
  if (durable_dir.empty() && files.empty()) {
    std::fprintf(stderr, "nothing to route: pass p-document files or "
                         "--durable=<dir>\n");
    return 2;
  }

  auto catalog = std::make_shared<ViewCatalog>();
  for (const NamedView& v : parsed.views()) {
    catalog->AddView(v.name, v.def.Clone());
  }
  ShardedCorpusOptions options;
  options.shards = shards;
  std::unique_ptr<ShardedCorpus> corpus;
  if (durable_dir.empty()) {
    corpus = std::make_unique<ShardedCorpus>(options, catalog);
  } else {
    options.store.durable_dir = durable_dir;
    auto opened = ShardedCorpus::Open(options, catalog);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().message().c_str());
      return 1;
    }
    corpus = std::move(*opened);
    std::printf("recovered %zu document(s) across %d shard(s)\n",
                corpus->Names().size(), corpus->shard_count());
  }
  for (const char* file : files) {
    const auto pd = LoadPDoc(file);
    if (!pd.ok()) {
      std::fprintf(stderr, "%s\n", pd.status().message().c_str());
      return 1;
    }
    if (Status s = corpus->Put(file, *pd); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", file, s.message().c_str());
      return 1;
    }
  }
  if (!parsed.views().empty() && !corpus->Names().empty()) {
    std::vector<Pattern> queries;
    for (const NamedView& v : parsed.views()) {
      queries.push_back(v.def.Clone());
    }
    const auto fan = corpus->AnswerAllDocuments(queries);
    std::printf("fan-out: %zu quer(y/ies) x %zu document(s)\n",
                queries.size(), fan.size());
  }
  PrintShardInfos(*corpus);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "eval") return CmdEval(argc, argv);
  if (cmd == "worlds") return CmdWorlds(argc, argv);
  if (cmd == "answer") return CmdAnswer(argc, argv);
  if (cmd == "rewrite") return CmdRewrite(argc, argv);
  if (cmd == "plan") return CmdPlan(argc, argv);
  if (cmd == "update") return CmdUpdate(argc, argv);
  if (cmd == "compact") return CmdCompact(argc, argv);
  if (cmd == "circuit") return CmdCircuit(argc, argv);
  if (cmd == "explain") return CmdExplain(argc, argv);
  if (cmd == "wal-dump") return CmdWalDump(argc, argv);
  if (cmd == "recover") return CmdRecover(argc, argv);
  if (cmd == "whatif") return CmdWhatIf(argc, argv);
  if (cmd == "shards") return CmdShards(argc, argv);
  return Usage();
}
