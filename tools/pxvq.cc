// pxvq — command-line front end for the library.
//
//   pxvq eval    <pdoc-file> <query>                 q(P̂) with probabilities
//   pxvq worlds  <pdoc-file> [max]                   enumerate ⟦P̂⟧
//   pxvq answer  <pdoc-file> <query> name=def ...    answer q from views only
//   pxvq rewrite <query> name=def ...                decide rewritability
//   pxvq plan    <pdoc-file> <query> name=def ...    costed answer plans
//
// p-Document files use the text notation of pxml/parser.h, e.g.
//   a(mux(b(c)@0.25, d@0.5), ind(e@0.75), f)
// Queries and views use XPath notation, e.g. a//b[c]/d.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/worlds.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"
#include "xml/parser.h"

using namespace pxv;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pxvq eval    <pdoc-file> <query>\n"
               "  pxvq worlds  <pdoc-file> [max]\n"
               "  pxvq answer  <pdoc-file> <query> name=def [name=def ...]\n"
               "  pxvq rewrite <query> name=def [name=def ...]\n"
               "  pxvq plan    <pdoc-file> <query> name=def [name=def ...]\n");
  return 2;
}

StatusOr<PDocument> LoadPDoc(const char* path) {
  std::ifstream in(path);
  if (!in) return Status::Error(std::string("cannot open ") + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ParsePDocument(buf.str());
}

bool ParseNamedView(const std::string& arg, Rewriter* rewriter) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos) return false;
  const auto def = ParsePattern(arg.substr(eq + 1));
  if (!def.ok()) {
    std::fprintf(stderr, "bad view '%s': %s\n", arg.c_str(),
                 def.status().message().c_str());
    return false;
  }
  rewriter->AddView(arg.substr(0, eq), *def);
  return true;
}

int CmdEval(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  for (const NodeProb& np : EvaluateTP(*pd, *q)) {
    std::printf("pid=%lld  Pr=%.10g\n",
                static_cast<long long>(pd->pid(np.node)), np.prob);
  }
  return 0;
}

int CmdWorlds(int argc, char** argv) {
  if (argc < 3) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const int max = argc > 3 ? std::atoi(argv[3]) : 1000;
  const auto worlds = EnumerateWorlds(*pd, max);
  if (!worlds.ok()) {
    std::fprintf(stderr, "%s\n", worlds.status().message().c_str());
    return 1;
  }
  for (const World& w : *worlds) {
    std::printf("%.10g\t%s\n", w.prob, ToTreeText(w.doc).c_str());
  }
  return 0;
}

int CmdAnswer(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 4; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const ViewExtensions exts = rewriter.Materialize(*pd);
  const auto answer = rewriter.Answer(*q, exts);
  if (!answer.has_value()) {
    std::fprintf(stderr,
                 "no probabilistic rewriting exists over these views\n");
    return 3;
  }
  for (const PidProb& pp : *answer) {
    std::printf("pid=%lld  Pr=%.10g\n", static_cast<long long>(pp.pid),
                pp.prob);
  }
  return 0;
}

int CmdRewrite(int argc, char** argv) {
  if (argc < 4) return Usage();
  const auto q = ParsePattern(argv[2]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 3; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const auto tp = rewriter.FindTp(*q);
  for (const TpRewriting& rw : tp) {
    std::printf("TP  via %-12s %s  %s\n", rw.view_name.c_str(),
                ToXPath(rw.plan).c_str(),
                rw.restricted ? "[restricted]" : "[unrestricted]");
  }
  const auto tpi = rewriter.FindTpi(*q);
  if (tpi.has_value()) {
    std::printf("TP∩ canonical plan, %zu members, exponents:",
                tpi->members.size());
    for (const Rational& c : tpi->coefficients) {
      std::printf(" %s", c.ToString().c_str());
    }
    std::printf("\n");
  }
  if (tp.empty() && !tpi.has_value()) {
    std::printf("no probabilistic rewriting\n");
    return 3;
  }
  return 0;
}

// Materializes the views, compiles the query, and shows every AnswerPlan
// candidate with its estimated cost plus the planner's pick.
int CmdPlan(int argc, char** argv) {
  if (argc < 5) return Usage();
  const auto pd = LoadPDoc(argv[2]);
  if (!pd.ok()) {
    std::fprintf(stderr, "%s\n", pd.status().message().c_str());
    return 1;
  }
  const auto q = ParsePattern(argv[3]);
  if (!q.ok()) {
    std::fprintf(stderr, "bad query: %s\n", q.status().message().c_str());
    return 1;
  }
  Rewriter rewriter;
  for (int i = 4; i < argc; ++i) {
    if (!ParseNamedView(argv[i], &rewriter)) return Usage();
  }
  const ViewExtensions exts = rewriter.Materialize(*pd);
  const QueryPlan plan = rewriter.Compile(*q);
  std::printf("fingerprint %016llx, %zu candidate plan(s)\n",
              static_cast<unsigned long long>(plan.fingerprint),
              plan.candidates.size());
  const int pick = SelectPlan(plan, exts);
  for (size_t i = 0; i < plan.candidates.size(); ++i) {
    const auto cost = EstimateCost(plan.candidates[i], exts);
    std::printf("  [%zu] %-50s %s%s\n", i,
                plan.candidates[i].DebugString().c_str(),
                cost.has_value() ? ("cost " + std::to_string(*cost)).c_str()
                                 : "not executable (extension missing)",
                static_cast<int>(i) == pick ? "   ← selected" : "");
  }
  if (pick < 0) {
    std::printf("no executable plan over the materialized extensions\n");
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "eval") return CmdEval(argc, argv);
  if (cmd == "worlds") return CmdWorlds(argc, argv);
  if (cmd == "answer") return CmdAnswer(argc, argv);
  if (cmd == "rewrite") return CmdRewrite(argc, argv);
  if (cmd == "plan") return CmdPlan(argc, argv);
  return Usage();
}
