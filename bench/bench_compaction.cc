// Tombstone compaction benchmarks (ISSUE 5 acceptance: under sustained
// insert/remove churn the document arena must stay bounded with compaction
// enabled — no monotonic growth — while post-compaction materialization
// stays bit-identical; the equivalence half lives in tests/compaction_test,
// this file measures the memory and latency half).
//
//   * BM_SustainedChurn         — the serving store's write+materialize loop
//     under steady insert/remove churn with automatic threshold compaction.
//     Counters expose the arena peak vs live size: peak_nodes stays a small
//     multiple of live_nodes (bounded), because Apply compacts every time
//     tombstones outweigh live nodes.
//   * BM_SustainedChurnNoCompact — identical workload, compaction disabled:
//     the arena grows monotonically (peak_nodes ≈ total insertions), the
//     "leak forever" baseline the CI floor compares against.
//   * BM_CompactionPass          — PDocument::Compact() itself on a
//     tombstone-heavy document (the latency a serving write pays when it
//     crosses the threshold).
//
// Churn model: a personnel corpus where every round retires the oldest
// person subtree and hires a fresh one (constant live size, unbounded
// tombstone production), followed by an incremental re-materialization of
// the registered views — the steady-state shape of a long-lived mutable
// document behind a ViewServer.

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "gen/docgen.h"
#include "serve/document_store.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

void RegisterViews(ViewServer* server) {
  server->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

// A fresh person subtree (name mux + one bonus) with explicit fresh pids.
PDocument FreshPerson(Rng& rng, PersistentId* next_pid) {
  PDocument person;
  {
    PDocument::MutationBatch batch(&person);  // Scoped: closed before return.
    const NodeId p = person.AddRoot(Intern("person"), (*next_pid)++);
    const NodeId name = person.AddOrdinary(p, Intern("name"), 1.0,
                                           (*next_pid)++);
    const NodeId mux = person.AddDistributional(name, PKind::kMux);
    person.AddOrdinary(mux, rng.NextBool(0.2) ? Intern("Rick") : Intern("Mary"),
                       0.4 + 0.5 * rng.NextDouble(), (*next_pid)++);
    const NodeId bonus = person.AddOrdinary(p, Intern("bonus"), 1.0,
                                            (*next_pid)++);
    const NodeId ind = person.AddDistributional(bonus, PKind::kInd);
    person.AddOrdinary(ind, Intern("laptop"), 0.3 + 0.5 * rng.NextDouble(),
                       (*next_pid)++);
  }
  return person;
}

// Pids of the current person subtrees, in document order.
std::deque<PersistentId> PersonPids(const PDocument& pd) {
  std::deque<PersistentId> pids;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && !pd.detached(n) && pd.label(n) == Intern("person")) {
      pids.push_back(pd.pid(n));
    }
  }
  return pids;
}

// One churn loop body shared by the with/without-compaction variants.
void SustainedChurn(benchmark::State& state, bool compact) {
  ViewServer server;
  RegisterViews(&server);
  DocumentStoreOptions options;
  options.compact_documents = compact;
  DocumentStore store(&server, options);
  Rng rng(2026);
  const int persons = static_cast<int>(state.range(0));
  PDocument pd = PersonnelPDocument(rng, persons, 0.2, 0.3);
  std::deque<PersistentId> pids = PersonPids(pd);
  const PersistentId root_pid = pd.pid(pd.root());
  if (!store.Put("doc", std::move(pd)).ok()) {
    state.SkipWithError("Put failed");
    return;
  }
  PersistentId next_pid = 10000000;
  int peak_nodes = 0;
  for (auto _ : state) {
    // Retire the oldest person, hire a fresh one: live size is constant,
    // tombstones accumulate until (if enabled) Apply compacts.
    PDocument person = FreshPerson(rng, &next_pid);
    const PersistentId fresh_pid = person.pid(person.root());
    const auto applied = store.Apply(
        "doc", {DocMutation::RemoveSubtree(pids.front()),
                DocMutation::InsertSubtree(root_pid, std::move(person))});
    if (!applied.ok()) {
      state.SkipWithError("Apply failed");
      return;
    }
    pids.pop_front();
    pids.push_back(fresh_pid);
    if (!store.MaterializeIncremental("doc").ok()) {
      state.SkipWithError("MaterializeIncremental failed");
      return;
    }
    peak_nodes = std::max(peak_nodes, store.Find("doc")->size());
  }
  const PDocument* doc = store.Find("doc");
  const DocumentStoreStats stats = store.stats();
  state.counters["peak_nodes"] = static_cast<double>(peak_nodes);
  state.counters["live_nodes"] = static_cast<double>(doc->live_size());
  state.counters["final_nodes"] = static_cast<double>(doc->size());
  state.counters["compactions"] = static_cast<double>(stats.compactions);
  state.counters["nodes_reclaimed"] =
      static_cast<double>(stats.nodes_reclaimed);
  state.counters["rounds"] = static_cast<double>(stats.batches);
  if (benchflags::Profile()) {
    const SubtreeCacheStats cache = store.SessionCacheStats("doc");
    state.counters["memo_hits"] = static_cast<double>(cache.hits);
    state.counters["memo_invalidations"] =
        static_cast<double>(cache.invalidations);
  }
}

void BM_SustainedChurn(benchmark::State& state) {
  SustainedChurn(state, /*compact=*/true);
}
BENCHMARK(BM_SustainedChurn)->Arg(50)->Arg(150)->Unit(benchmark::kMicrosecond);

void BM_SustainedChurnNoCompact(benchmark::State& state) {
  SustainedChurn(state, /*compact=*/false);
}
BENCHMARK(BM_SustainedChurnNoCompact)
    ->Arg(50)
    ->Arg(150)
    ->Unit(benchmark::kMicrosecond);

// Compact() alone: rebuild cost of a half-tombstoned arena (the write-path
// latency of the round that crosses the threshold).
void BM_CompactionPass(benchmark::State& state) {
  Rng rng(7);
  const int persons = static_cast<int>(state.range(0));
  PDocument churned = PersonnelPDocument(rng, persons, 0.2, 0.3);
  // Detach just under half the arena so every iteration's copy sits at the
  // serving threshold.
  std::deque<PersistentId> pids = PersonPids(churned);
  while (churned.detached_count() * 2 <= churned.size() && pids.size() > 1) {
    churned.RemoveSubtree(churned.FindByPid(pids.front()));
    pids.pop_front();
  }
  for (auto _ : state) {
    state.PauseTiming();
    PDocument copy = churned;
    state.ResumeTiming();
    benchmark::DoNotOptimize(copy.Compact());
  }
  state.counters["arena_nodes"] = static_cast<double>(churned.size());
  state.counters["tombstones"] = static_cast<double>(churned.detached_count());
}
BENCHMARK(BM_CompactionPass)->Arg(50)->Arg(300)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
