// Experiment E3 — Proposition 4: TPrewrite decides the existence of a
// probabilistic TP-rewriting in PTime in the size of the query and views.
// Claimed shape: cost grows polynomially (near-linearly) in |V| and
// polynomially in |q|.

#include <benchmark/benchmark.h>

#include "gen/querygen.h"
#include "rewrite/tp_rewrite.h"
#include "util/random.h"

namespace pxv {
namespace {

void BM_TPrewriteViewCount(benchmark::State& state) {
  Rng rng(99);
  QueryGenOptions o;
  o.depth = 5;
  const Pattern q = RandomQuery(rng, o);
  const int num_views = static_cast<int>(state.range(0));
  const auto views = ViewWorkload(q, rng, num_views / 2, num_views / 2, o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TPrewrite(q, views));
  }
  state.counters["views"] = num_views;
}
BENCHMARK(BM_TPrewriteViewCount)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TPrewriteQuerySize(benchmark::State& state) {
  Rng rng(17);
  QueryGenOptions o;
  o.depth = static_cast<int>(state.range(0));
  o.pred_prob = 0.5;
  const Pattern q = RandomQuery(rng, o);
  const auto views = ViewWorkload(q, rng, 8, 8, o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TPrewrite(q, views));
  }
  state.counters["query_nodes"] = q.size();
}
BENCHMARK(BM_TPrewriteQuerySize)->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
