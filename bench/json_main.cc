// Shared main for every bench_* target. On top of the standard Google
// Benchmark behavior it
//   * writes BENCH_<name>.json next to the working directory — one record
//     per benchmark with {name, n, ns_per_op, counters} — so the repo's
//     perf trajectory is machine-readable instead of scroll-back only;
//   * accepts --smoke, which caps measuring time (CI runs every bench in
//     smoke mode so the perf path cannot silently rot);
//   * accepts --profile (bench_flags.h), which benchmarks may consult to
//     emit kernel breakdown counters into their rows.
//
// <name> is the executable's basename with the "bench_" prefix stripped:
// ./bench_view_server --smoke  →  BENCH_view_server.json.

#include <benchmark/benchmark.h>

#include "bench_flags.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

// Console output as usual, plus a captured copy of every per-iteration run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    int64_t iterations;
    double ns_per_op;
    std::vector<std::pair<std::string, double>> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.ns_per_op = run.real_accumulated_time / iters * 1e9;
      for (const auto& [key, counter] : run.counters) {
        row.counters.emplace_back(key, static_cast<double>(counter));
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

bool WriteJson(const std::string& path, const CapturingReporter& reporter) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  const auto& rows = reporter.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %lld, \"ns_per_op\": %.6g",
                 JsonEscape(row.name).c_str(),
                 static_cast<long long>(row.iterations), row.ns_per_op);
    for (const auto& [key, value] : row.counters) {
      std::fprintf(f, ", \"%s\": %.6g", JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

std::string BenchName(const char* argv0) {
  std::string name = argv0;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name;
}

}  // namespace

namespace pxv {
namespace benchflags {
namespace {
bool g_profile = false;
}  // namespace
bool Profile() { return g_profile; }
void SetProfile(bool enabled) { g_profile = enabled; }
}  // namespace benchflags
}  // namespace pxv

int main(int argc, char** argv) {
  const std::string json_path = "BENCH_" + BenchName(argv[0]) + ".json";

  // Rebuild argv without --smoke, appending its expansion if present.
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      pxv::benchflags::SetProfile(true);
    } else {
      args.push_back(argv[i]);
    }
  }
  static char kMinTime[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(kMinTime);
  int argc2 = static_cast<int>(args.size());

  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!WriteJson(json_path, reporter)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu benchmarks)\n", json_path.c_str(),
               reporter.rows().size());
  return 0;
}
