// Experiment E1 — §2 / [22]: evaluating TP (and TP∩) queries over
// p-documents is PTime in the size of the data and worst-case exponential in
// the size of the query.
//
// Claimed shape: per-answer evaluation time grows polynomially (near-
// linearly) with |P̂| at fixed query, and grows much faster with the number
// of conjoined goals at fixed data.

#include <benchmark/benchmark.h>

#include "gen/docgen.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// Data-complexity sweep: one node-selection probability on personnel
// documents of growing size.
void BM_DataComplexity(benchmark::State& state) {
  Rng rng(42);
  const int persons = static_cast<int>(state.range(0));
  const PDocument pd = PersonnelPDocument(rng, persons);
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  // A fixed candidate node: the first bonus.
  NodeId target = kNullNode;
  for (NodeId n = 0; n < pd.size() && target == kNullNode; ++n) {
    if (pd.ordinary(n) && LabelName(pd.label(n)) == "bonus") target = n;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectionProbability(pd, q, target));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_DataComplexity)->Arg(10)->Arg(30)->Arg(100)->Arg(300)->Arg(1000)
    ->Arg(3000)->Unit(benchmark::kMicrosecond);

// Full q(P̂) (all candidates) on growing documents.
void BM_FullEvaluation(benchmark::State& state) {
  Rng rng(7);
  const PDocument pd = PersonnelPDocument(rng, static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateTP(pd, q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_FullEvaluation)->Arg(10)->Arg(30)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// Query-complexity sweep: a conjunction of k goals over fixed data — the DP
// state space grows with total query size.
void BM_QueryComplexity(benchmark::State& state) {
  Rng rng(11);
  const PDocument pd = PersonnelPDocument(rng, 50);
  const int k = static_cast<int>(state.range(0));
  std::vector<Pattern> goals_storage;
  const char* shapes[] = {
      "IT-personnel//person/bonus",
      "IT-personnel//person[name/Rick]/bonus",
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name]/bonus",
      "IT-personnel//person/bonus[pda]",
      "IT-personnel//person[name/Mary]/bonus",
  };
  for (int i = 0; i < k; ++i) goals_storage.push_back(Tp(shapes[i % 6]));
  NodeId target = kNullNode;
  for (NodeId n = 0; n < pd.size() && target == kNullNode; ++n) {
    if (pd.ordinary(n) && LabelName(pd.label(n)) == "bonus") target = n;
  }
  std::vector<NodeId> anchor{target};
  std::vector<Goal> goals;
  for (const Pattern& g : goals_storage) goals.push_back({&g, &anchor});
  for (auto _ : state) {
    benchmark::DoNotOptimize(JointProbability(pd, goals));
  }
  state.counters["total_query_nodes"] = [&] {
    int total = 0;
    for (const Pattern& g : goals_storage) total += g.size();
    return total;
  }();
}
BENCHMARK(BM_QueryComplexity)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
