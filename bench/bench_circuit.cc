// Lineage-circuit delta-serving benchmarks (ISSUE 7 acceptance: on a
// probability-only delta stream the compiled circuit's value re-propagation
// must beat the PR 6 incremental DP by ≥ 5× at default sizes — CI gates on
// the IncrementalDp/Circuit ratio at fanout 4096).
//
//   * BM_CircuitDelta       — EvalSession(kCircuit): the first evaluation
//     records and compiles the DP, every later one diffs the input gates
//     and forward-propagates only the dirty cone (prob/circuit_backend.h).
//   * BM_IncrementalDpDelta — the PR 6 baseline on the same churn: exact DP
//     with the subtree memo + sibling-product trees, recomputing the dirty
//     root-to-change spine per delta.
//   * BM_CircuitCompile     — the cold build (recorded DP pass + compile),
//     i.e. what a structural mutation costs the circuit route.
//
// --profile adds the circuit counters (gates, dirty gates per delta,
// recompiles) to the JSON rows.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "prob/circuit_backend.h"
#include "prob/eval_session.h"
#include "pxml/pdocument.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

// One high-fanout ind node whose children all carry query-relevant bases
// (same shape as BM_HighFanoutDelta in bench_incremental.cc): every
// probability sits strictly inside (0, 1), so the churn below can never
// flip a recorded guard and the stream is served by pure re-propagation.
PDocument HighFanoutDoc(int fanout, std::vector<NodeId>* items) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  Rng rng(4096);
  items->reserve(size_t(fanout));
  for (int i = 0; i < fanout; ++i) {
    items->push_back(
        pd.AddOrdinary(ind, Intern("item"), 0.1 + 0.8 * rng.NextDouble()));
  }
  pd.AddOrdinary(ind, Intern("out"), 0.5);
  pd.ClearDirtyPaths();
  return pd;
}

void RunDeltaStream(benchmark::State& state, const EvalOptions& opts) {
  const int fanout = static_cast<int>(state.range(0));
  std::vector<NodeId> items;
  PDocument pd = HighFanoutDoc(fanout, &items);
  const Pattern q = Tp("root[item]/out");
  EvalSession session(pd, opts);
  session.EvaluateTP(q);  // Cold pass outside the loop.
  double p = 0.41;
  int i = 0;
  for (auto _ : state) {
    p = (p == 0.41) ? 0.42 : 0.41;
    pd.SetEdgeProb(items[size_t((i++ * 769) % fanout)], p);
    benchmark::DoNotOptimize(session.EvaluateTP(q));
  }
  state.counters["fanout"] = fanout;
  if (benchflags::Profile() && session.dp_profile() != nullptr) {
    const DistProfile& prof = *session.dp_profile();
    state.counters["circuit_gates"] =
        static_cast<double>(prof.circuit_gates);
    state.counters["circuit_recompiles"] =
        static_cast<double>(prof.circuit_recompiles);
    state.counters["circuit_dirty_gates"] = benchmark::Counter(
        static_cast<double>(prof.circuit_dirty_gates),
        benchmark::Counter::kAvgIterations);
  }
}

void BM_CircuitDelta(benchmark::State& state) {
  EvalOptions opts;
  opts.backend = BackendKind::kCircuit;
  RunDeltaStream(state, opts);
}
BENCHMARK(BM_CircuitDelta)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalDpDelta(benchmark::State& state) {
  EvalOptions opts;
  opts.backend = BackendKind::kExact;
  opts.cache_subtrees = true;
  RunDeltaStream(state, opts);
}
BENCHMARK(BM_IncrementalDpDelta)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_CircuitCompile(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  std::vector<NodeId> items;
  const PDocument pd = HighFanoutDoc(fanout, &items);
  const Pattern q = Tp("root[item]/out");
  for (auto _ : state) {
    CircuitBackend backend;
    benchmark::DoNotOptimize(backend.BatchAnchored(pd, {&q}));
    if (benchflags::Profile()) {
      state.counters["circuit_gates"] =
          static_cast<double>(backend.profile().circuit_gates);
    }
  }
}
BENCHMARK(BM_CircuitCompile)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------- shared pool ----
// ISSUE 9 acceptance: N standing queries on ONE shared pool must serve a
// delta with a single merged propagation ≥ 4× faster than N per-query
// circuits each propagating their own cone (CI gates on the
// Independent/Shared ratio at 16 queries / fanout 4096, plus the sharing
// counters: shared gates must be ≥ 50% of the live pool).

// HighFanoutDoc with one "out<k>" readout per standing query: the fanout
// spine is query-relevant for every query (shared gates), only the readout
// is private.
PDocument SharedFanoutDoc(int fanout, int nqueries,
                          std::vector<NodeId>* items) {
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  Rng rng(4096);
  items->reserve(size_t(fanout));
  for (int i = 0; i < fanout; ++i) {
    items->push_back(
        pd.AddOrdinary(ind, Intern("item"), 0.1 + 0.8 * rng.NextDouble()));
  }
  for (int k = 0; k < nqueries; ++k) {
    pd.AddOrdinary(ind, Intern("out" + std::to_string(k)), 0.5);
  }
  pd.ClearDirtyPaths();
  return pd;
}

std::vector<Pattern> SharedQueries(int nqueries) {
  std::vector<Pattern> queries;
  queries.reserve(size_t(nqueries));
  for (int k = 0; k < nqueries; ++k) {
    queries.push_back(Tp("root[item]/out" + std::to_string(k)));
  }
  return queries;
}

void BM_SharedCircuitDelta(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int nq = static_cast<int>(state.range(1));
  std::vector<NodeId> items;
  PDocument pd = SharedFanoutDoc(fanout, nq, &items);
  const std::vector<Pattern> queries = SharedQueries(nq);
  std::vector<const Pattern*> ptrs;
  for (const Pattern& q : queries) ptrs.push_back(&q);
  EvalOptions opts;
  opts.backend = BackendKind::kCircuit;
  EvalSession session(pd, opts);
  session.EvaluateAll(ptrs);  // Cold: every query registers on one pool.
  double p = 0.41;
  int i = 0;
  for (auto _ : state) {
    p = (p == 0.41) ? 0.42 : 0.41;
    pd.SetEdgeProb(items[size_t((i++ * 769) % fanout)], p);
    // One merged propagation re-serves all nq roots; the other nq-1
    // evaluations replay from the already-synced circuit.
    benchmark::DoNotOptimize(session.EvaluateAll(ptrs));
  }
  state.counters["fanout"] = fanout;
  state.counters["queries"] = nq;
  if (benchflags::Profile() && session.dp_profile() != nullptr) {
    const DistProfile& prof = *session.dp_profile();
    state.counters["circuit_shared_gates"] =
        static_cast<double>(prof.circuit_shared_gates);
    state.counters["circuit_private_gates"] =
        static_cast<double>(prof.circuit_private_gates);
    state.counters["circuit_roots"] =
        static_cast<double>(prof.circuit_roots);
    state.counters["circuit_recompiles"] =
        static_cast<double>(prof.circuit_recompiles);
    state.counters["circuit_merged_propagations"] =
        static_cast<double>(prof.circuit_merged_propagations);
    state.counters["circuit_dirty_gates"] = benchmark::Counter(
        static_cast<double>(prof.circuit_dirty_gates),
        benchmark::Counter::kAvgIterations);
  }
}
BENCHMARK(BM_SharedCircuitDelta)
    ->Args({4096, 16})
    ->Unit(benchmark::kMicrosecond);

void BM_IndependentCircuitDelta(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const int nq = static_cast<int>(state.range(1));
  std::vector<NodeId> items;
  PDocument pd = SharedFanoutDoc(fanout, nq, &items);
  const std::vector<Pattern> queries = SharedQueries(nq);
  EvalOptions opts;
  opts.backend = BackendKind::kCircuit;
  // The pre-ISSUE-9 shape: one circuit per query, each with its own pool,
  // so every delta pays nq separate dirty-cone propagations over nq copies
  // of the same spine.
  std::vector<std::unique_ptr<EvalSession>> sessions;
  sessions.reserve(size_t(nq));
  for (int k = 0; k < nq; ++k) {
    sessions.push_back(std::make_unique<EvalSession>(pd, opts));
    sessions.back()->EvaluateTP(queries[size_t(k)]);  // Cold compile.
  }
  double p = 0.41;
  int i = 0;
  for (auto _ : state) {
    p = (p == 0.41) ? 0.42 : 0.41;
    pd.SetEdgeProb(items[size_t((i++ * 769) % fanout)], p);
    for (int k = 0; k < nq; ++k) {
      benchmark::DoNotOptimize(sessions[size_t(k)]->EvaluateTP(
          queries[size_t(k)]));
    }
  }
  state.counters["fanout"] = fanout;
  state.counters["queries"] = nq;
}
BENCHMARK(BM_IndependentCircuitDelta)
    ->Args({4096, 16})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
