// Experiment E5 — §5.1: TP∩ equivalence goes through interleavings, whose
// number is exponential in the intersection size (the source of
// coNP-hardness); extended-skeleton detection, by contrast, is linear.
//
// Claimed shape: interleaving count and enumeration time explode with the
// number of intersected //-views; IsExtendedSkeleton stays flat.

#include <benchmark/benchmark.h>

#include <string>

#include "tpi/interleaving.h"
#include "tpi/skeleton.h"
#include "tp/parser.h"

namespace pxv {
namespace {

TpIntersection DescendantViews(int k) {
  TpIntersection q;
  for (int i = 0; i < k; ++i) {
    q.Add(Tp("a//b[p" + std::to_string(i) + "]//c"));
  }
  return q;
}

void BM_InterleavingCount(benchmark::State& state) {
  const TpIntersection q = DescendantViews(static_cast<int>(state.range(0)));
  int64_t count = 0;
  for (auto _ : state) {
    count = CountInterleavings(q, 2000000);  // Capped: the blowup is the point.
    benchmark::DoNotOptimize(count);
  }
  state.counters["interleavings"] = static_cast<double>(count);
}
BENCHMARK(BM_InterleavingCount)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_InterleavingMaterialize(benchmark::State& state) {
  const TpIntersection q = DescendantViews(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto result = Interleavings(q, 2000000);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_InterleavingMaterialize)->DenseRange(1, 4)
    ->Unit(benchmark::kMicrosecond);

// Extended-skeleton detection on growing patterns: linear.
void BM_SkeletonCheck(benchmark::State& state) {
  std::string text = "a[b//c]";
  for (int i = 0; i < state.range(0); ++i) {
    text += "/d" + std::to_string(i) + "[x/y]";
  }
  text += "//e";
  const Pattern q = Tp(text);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsExtendedSkeleton(q));
  }
  state.counters["pattern_nodes"] = q.size();
}
BENCHMARK(BM_SkeletonCheck)->DenseRange(2, 32, 6)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace pxv
