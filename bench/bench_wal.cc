// Durability benchmarks (ISSUE 8 acceptance: durable Apply with
// fsync=batch must stay within 2x of the in-memory Apply — the WAL tax on
// the serving write path is an append plus an amortized fsync, not a
// rewrite).
//
//   * BM_Apply              — the in-memory baseline: one SetEdgeProb batch
//     per iteration against a personnel store, no durability.
//   * BM_ApplyDurable/<p>   — the identical mutation stream against a
//     durable store; arg 0/1/2 selects fsync none/batch/always. The
//     batch policy (sync every 32 records) is the acceptance point;
//     always is the worst case (one fsync per batch); none isolates the
//     pure append + framing cost.
//   * BM_Checkpoint         — full snapshot + WAL rotation latency as a
//     function of corpus size (the cost Checkpoint() pays off the write
//     lock).
//   * BM_Recover            — DocumentStore::Open() on a directory holding
//     one checkpointed corpus plus a WAL tail: replay + view rebuild, the
//     restart-time budget.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "gen/docgen.h"
#include "serve/document_store.h"
#include "serve/io_env.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

void RegisterViews(ViewServer* server) {
  server->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  server->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
}

std::string FreshDir(const std::string& name) {
  const std::string dir = "/tmp/pxv_bench_wal_" + name;
  std::system(("rm -rf " + dir).c_str());
  return dir;
}

// Mux name alternatives: probabilities free to move below their initial
// value, so the churn stream is always valid.
std::vector<std::pair<PersistentId, double>> MuxAlternatives(
    const PDocument& doc) {
  std::vector<std::pair<PersistentId, double>> out;
  for (NodeId n = 0; n < doc.size(); ++n) {
    if (!doc.ordinary(n) || doc.detached(n)) continue;
    const NodeId parent = doc.parent(n);
    if (parent != kNullNode && !doc.ordinary(parent) &&
        doc.kind(parent) == PKind::kMux) {
      out.push_back({doc.pid(n), doc.edge_prob(n)});
    }
  }
  return out;
}

// Shared loop body: one single-mutation Apply per iteration.
void ApplyLoop(benchmark::State& state, DocumentStore* store) {
  const auto alternatives = MuxAlternatives(*store->Find("doc"));
  Rng rng(31);
  for (auto _ : state) {
    const auto& [pid, initial] =
        alternatives[rng.NextBounded(alternatives.size())];
    if (!store->Apply("doc", {DocMutation::SetEdgeProb(
                                 pid, initial * rng.NextDouble())})
             .ok()) {
      state.SkipWithError("Apply failed");
      return;
    }
  }
  const DocumentStoreStats stats = store->stats();
  state.counters["batches"] = static_cast<double>(stats.batches);
  state.counters["wal_appends"] = static_cast<double>(stats.wal_appends);
  state.counters["wal_bytes"] = static_cast<double>(stats.wal_bytes);
  if (stats.wal_appends > 0) {
    state.counters["bytes_per_record"] =
        static_cast<double>(stats.wal_bytes) /
        static_cast<double>(stats.wal_appends);
  }
}

void BM_Apply(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server);
  DocumentStore store(&server);
  Rng rng(2026);
  if (!store.Put("doc", PersonnelPDocument(rng, 30, 0.2, 0.3)).ok()) {
    state.SkipWithError("Put failed");
    return;
  }
  ApplyLoop(state, &store);
}
BENCHMARK(BM_Apply)->Unit(benchmark::kMicrosecond);

void BM_ApplyDurable(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server);
  DocumentStoreOptions options;
  options.durable_dir = FreshDir("apply");
  switch (state.range(0)) {
    case 0: options.fsync = FsyncPolicy::kNone; break;
    case 1: options.fsync = FsyncPolicy::kBatch; break;
    default: options.fsync = FsyncPolicy::kAlways; break;
  }
  options.checkpoint_after_wal_bytes = 0;  // Measure the WAL tax alone.
  auto store = DocumentStore::Open(&server, options);
  if (!store.ok()) {
    state.SkipWithError("Open failed");
    return;
  }
  Rng rng(2026);
  if (!(*store)->Put("doc", PersonnelPDocument(rng, 30, 0.2, 0.3)).ok()) {
    state.SkipWithError("Put failed");
    return;
  }
  ApplyLoop(state, store->get());
}
BENCHMARK(BM_ApplyDurable)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Checkpoint(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server);
  DocumentStoreOptions options;
  options.durable_dir = FreshDir("checkpoint");
  options.fsync = FsyncPolicy::kBatch;
  options.checkpoint_after_wal_bytes = 0;
  auto store = DocumentStore::Open(&server, options);
  if (!store.ok()) {
    state.SkipWithError("Open failed");
    return;
  }
  Rng rng(2026);
  const int persons = static_cast<int>(state.range(0));
  if (!(*store)->Put("doc", PersonnelPDocument(rng, persons, 0.2, 0.3)).ok()) {
    state.SkipWithError("Put failed");
    return;
  }
  for (auto _ : state) {
    if (!(*store)->Checkpoint().ok()) {
      state.SkipWithError("Checkpoint failed");
      return;
    }
  }
  state.counters["doc_nodes"] =
      static_cast<double>((*store)->Find("doc")->size());
  state.counters["checkpoints"] =
      static_cast<double>((*store)->stats().checkpoints);
}
BENCHMARK(BM_Checkpoint)->Arg(30)->Arg(150)->Unit(benchmark::kMicrosecond);

void BM_Recover(benchmark::State& state) {
  // One directory per corpus size: a checkpointed corpus plus a WAL tail
  // of single-mutation batches (the shape a crash leaves behind).
  const std::string dir =
      FreshDir("recover_" + std::to_string(state.range(0)));
  {
    ViewServer server;
    RegisterViews(&server);
    DocumentStoreOptions options;
    options.durable_dir = dir;
    options.fsync = FsyncPolicy::kBatch;
    options.checkpoint_after_wal_bytes = 0;
    auto store = DocumentStore::Open(&server, options);
    if (!store.ok()) {
      state.SkipWithError("setup Open failed");
      return;
    }
    Rng rng(2026);
    const int persons = static_cast<int>(state.range(0));
    if (!(*store)
             ->Put("doc", PersonnelPDocument(rng, persons, 0.2, 0.3))
             .ok()) {
      state.SkipWithError("setup Put failed");
      return;
    }
    if (!(*store)->Checkpoint().ok()) {
      state.SkipWithError("setup Checkpoint failed");
      return;
    }
    const auto alternatives = MuxAlternatives(*(*store)->Find("doc"));
    for (int i = 0; i < 200; ++i) {
      const auto& [pid, initial] =
          alternatives[rng.NextBounded(alternatives.size())];
      if (!(*store)
               ->Apply("doc", {DocMutation::SetEdgeProb(
                                  pid, initial * rng.NextDouble())})
               .ok()) {
        state.SkipWithError("setup Apply failed");
        return;
      }
    }
  }
  // Every Open starts a fresh (empty) WAL segment for new writes; remove
  // it between iterations so each timed Open sees the identical directory.
  const auto baseline = IoEnv::Real()->ListDir(dir);
  if (!baseline.ok()) {
    state.SkipWithError("ListDir failed");
    return;
  }
  for (auto _ : state) {
    {
      ViewServer server;
      RegisterViews(&server);
      DocumentStoreOptions options;
      options.durable_dir = dir;
      auto store = DocumentStore::Open(&server, options);
      if (!store.ok()) {
        state.SkipWithError("Open failed");
        return;
      }
      benchmark::DoNotOptimize((*store)->Find("doc"));
    }
    state.PauseTiming();
    if (auto now = IoEnv::Real()->ListDir(dir); now.ok()) {
      for (const std::string& f : *now) {
        if (std::find(baseline->begin(), baseline->end(), f) ==
            baseline->end()) {
          (void)IoEnv::Real()->RemoveFile(dir + "/" + f);
        }
      }
    }
    state.ResumeTiming();
  }
  state.counters["wal_tail_records"] = 200;
}
BENCHMARK(BM_Recover)->Arg(30)->Arg(150)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pxv
