// Experiment E8 — §4.4 remark and §7: evaluating an alternative plan over a
// view extension is no more expensive than query evaluation over the
// original p-document; the inclusion–exclusion f_r costs 2^a − 1 joint-event
// evaluations for a nested view matches.
//
// Claimed shape: restricted f_r scales with extension size like plain
// evaluation; unrestricted f_r grows exponentially in a (the number of
// nested ancestors selected by the view), which is small in practice.

#include <benchmark/benchmark.h>

#include <string>

#include "gen/docgen.h"
#include "prob/query_eval.h"
#include "pxml/parser.h"
#include "pxml/view_extension.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// Restricted f_r on growing personnel extensions.
void BM_RestrictedFr(benchmark::State& state) {
  Rng rng(1);
  const PDocument pd =
      PersonnelPDocument(rng, static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person/bonus[laptop]");
  Rewriter rewriter;
  rewriter.AddView("all", Tp("IT-personnel//person/bonus"));
  const auto rws = TPrewrite(q, rewriter.views());
  const ViewExtensions exts = rewriter.Materialize(pd);
  const PDocument& ext = exts.at("all");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteTpRewriting(rws.at(0), ext));
  }
  state.counters["extension_nodes"] = ext.size();
}
BENCHMARK(BM_RestrictedFr)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

// Unrestricted f_r with growing ancestor count a: nested b/c chains make
// the view select a nested answers above the target.
void BM_InclusionExclusionByAncestors(benchmark::State& state) {
  const int a = static_cast<int>(state.range(0));
  // Document: a chain of a nested (b/c) pairs, with the d below the last c
  // and an uncertain e on each b… deterministic path keeps things simple:
  //   root(b(c(b(c(…(mux(d@0.5)))))))
  std::string text;
  for (int i = 0; i < a; ++i) text += "b(c(";
  text += "mux(d@0.5)";
  for (int i = 0; i < a; ++i) text += "))";
  const auto pd = ParsePDocument("a(" + text + ")");
  const Pattern q = Tp("a//b/c//d");
  Rewriter rewriter;
  rewriter.AddView("v", Tp("a//b/c"));
  const auto rws = TPrewrite(q, rewriter.views());
  const ViewExtensions exts = rewriter.Materialize(*pd);
  const PDocument& ext = exts.at("v");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteTpRewriting(rws.at(0), ext));
  }
  state.counters["ancestors"] = a;
}
BENCHMARK(BM_InclusionExclusionByAncestors)->DenseRange(1, 6)
    ->Unit(benchmark::kMicrosecond);

// Baseline for the comparison: direct evaluation on the same original
// documents as BM_RestrictedFr.
void BM_DirectBaseline(benchmark::State& state) {
  Rng rng(1);
  const PDocument pd =
      PersonnelPDocument(rng, static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person/bonus[laptop]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateTP(pd, q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_DirectBaseline)->Arg(25)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
