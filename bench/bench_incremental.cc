// Incremental materialization benchmarks (ISSUE 4 acceptance: delta
// re-materialization must beat a from-scratch rebuild by ≥ 5× at default
// sizes — CI gates on the Full/Incremental ratio at 300 persons).
//
//   * BM_FullRebuildDelta   — the pre-store behavior: after every mutation
//     batch, re-materialize every view from scratch (fresh EvalSession,
//     full DP pass per output-label group, full extension copies).
//   * BM_IncrementalDelta   — the DocumentStore path: the persistent
//     session's subtree memo recomputes only the dirty spines, and
//     BuildViewExtensionDelta patches only the changed result entries.
//     The delta dirties *all* registered views (it sits under a bonus
//     subtree every view copies), so the win measured is the incremental
//     machinery itself, not dirty-view skipping.
//   * BM_ApplyBatch         — the write path alone (transactional copy +
//     validate + dirty tracking).
//
// --profile adds the subtree-memo counters to the JSON rows.

#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "gen/docgen.h"
#include "prob/eval_session.h"
#include "rewrite/rewriter.h"
#include "serve/document_store.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "xml/label.h"

namespace pxv {
namespace {

void RegisterViews(ViewServer* server, Rewriter* rewriter) {
  const char* defs[] = {
      "IT-personnel//person/bonus",
      "IT-personnel//person[name/Rick]/bonus",
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
  };
  int i = 0;
  for (const char* def : defs) {
    const std::string name = "v" + std::to_string(i++);
    if (server != nullptr) server->AddView(name, Tp(def));
    if (rewriter != nullptr) rewriter->AddView(name, Tp(def));
  }
}

PDocument BenchDoc(int persons) {
  Rng rng(2026);
  return PersonnelPDocument(rng, persons, /*rick_fraction=*/0.2,
                            /*laptop_fraction=*/0.3);
}

// A bonus-project alternative (mux child under a bonus): every view copies
// the enclosing bonus subtree, so toggling this edge dirties all of them.
PersistentId SomeProjectPid(const PDocument& pd) {
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (!pd.ordinary(n) || pd.detached(n)) continue;
    const NodeId par = pd.parent(n);
    if (par == kNullNode || pd.kind(par) != PKind::kMux) continue;
    const NodeId anc = pd.OrdinaryAncestor(n);
    if (anc != kNullNode && pd.label(anc) == Intern("bonus")) {
      return pd.pid(n);
    }
  }
  return kNullPid;
}

void BM_IncrementalDelta(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server, nullptr);
  DocumentStore store(&server);
  PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  const PersistentId target = SomeProjectPid(pd);
  if (store.Put("doc", std::move(pd)).ok() == false) return;
  double p = 0.29;
  for (auto _ : state) {
    // The delta applies outside the timed region: both benchmarks measure
    // re-materialization only, which is what the ≥5× acceptance gate is
    // about (the write path is measured separately by BM_ApplyBatch).
    state.PauseTiming();
    p = (p == 0.29) ? 0.28 : 0.29;  // Alternate so every batch is a change.
    const bool applied =
        store.Apply("doc", {DocMutation::SetEdgeProb(target, p)}).ok();
    state.ResumeTiming();
    if (!applied) {
      state.SkipWithError("Apply failed");
      return;
    }
    if (!store.MaterializeIncremental("doc").ok()) {
      state.SkipWithError("MaterializeIncremental failed");
      return;
    }
  }
  const DocumentStoreStats stats = store.stats();
  state.counters["views_patched"] = static_cast<double>(stats.views_patched);
  if (benchflags::Profile()) {
    const SubtreeCacheStats cache = store.SessionCacheStats("doc");
    state.counters["memo_hits"] = static_cast<double>(cache.hits);
    state.counters["memo_stores"] = static_cast<double>(cache.stores);
    state.counters["memo_flushes"] = static_cast<double>(cache.flushes);
  }
}
BENCHMARK(BM_IncrementalDelta)->Arg(100)->Arg(300)->Unit(benchmark::kMicrosecond);

void BM_FullRebuildDelta(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server, nullptr);
  Rewriter rewriter;
  RegisterViews(nullptr, &rewriter);
  // The pre-store serving behavior after a mutation: Rewriter::Materialize
  // over the changed document — a fresh EvalSession, a full DP pass per
  // output-label group, every extension rebuilt from scratch. (The store
  // still applies the deltas, outside the timed region, so both benchmarks
  // see the same document states.)
  DocumentStoreOptions options;
  options.incremental = false;
  DocumentStore store(&server, options);
  PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  const PersistentId target = SomeProjectPid(pd);
  if (store.Put("doc", std::move(pd)).ok() == false) return;
  const PDocument* doc = store.Find("doc");
  double p = 0.29;
  for (auto _ : state) {
    state.PauseTiming();
    p = (p == 0.29) ? 0.28 : 0.29;
    const bool applied =
        store.Apply("doc", {DocMutation::SetEdgeProb(target, p)}).ok();
    state.ResumeTiming();
    if (!applied) {
      state.SkipWithError("Apply failed");
      return;
    }
    benchmark::DoNotOptimize(rewriter.Materialize(*doc));
  }
  state.counters["views"] = static_cast<double>(rewriter.views().size());
}
BENCHMARK(BM_FullRebuildDelta)->Arg(100)->Arg(300)->Unit(benchmark::kMicrosecond);

// One high-fanout Combine site under churn: a flat arg0-ary ind node whose
// children all carry non-trivial bases, one child's edge probability
// mutated per iteration, re-evaluated through a persistent session's
// subtree memo. arg1 toggles the sibling-product segment tree — off pays a
// linear sweep over the fanout every delta, on recomputes only the mutated
// leaf's O(log fanout) root-path products (the churn test in
// tests/incremental_test.cc pins the counter bound; this measures it).
void BM_HighFanoutDelta(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  PDocument pd;
  const NodeId root = pd.AddRoot(Intern("root"));
  const NodeId ind = pd.AddDistributional(root, PKind::kInd);
  Rng rng(4096);
  std::vector<NodeId> items;
  items.reserve(fanout);
  for (int i = 0; i < fanout; ++i) {
    items.push_back(
        pd.AddOrdinary(ind, Intern("item"), 0.1 + 0.8 * rng.NextDouble()));
  }
  pd.AddOrdinary(ind, Intern("out"), 0.5);
  const Pattern q = Tp("root[item]/out");
  EvalOptions opts;
  opts.backend = BackendKind::kExact;
  opts.cache_subtrees = true;
  opts.sibling_tree = state.range(1) != 0;
  EvalSession session(pd, opts);
  session.EvaluateTP(q);  // Cold pass outside the loop: memo populated.
  double p = 0.41;
  int i = 0;
  for (auto _ : state) {
    // The write is a few pointer chases — timing it alongside the
    // re-evaluation is cheaper than PauseTiming at this scale.
    p = (p == 0.41) ? 0.42 : 0.41;
    pd.SetEdgeProb(items[(i++ * 769) % fanout], p);
    benchmark::DoNotOptimize(session.EvaluateTP(q));
  }
  state.counters["fanout"] = fanout;
  if (benchflags::Profile() && session.dp_profile() != nullptr) {
    const DistProfile& prof = *session.dp_profile();
    const auto per_iter = [&](uint64_t v) {
      return benchmark::Counter(static_cast<double>(v),
                                benchmark::Counter::kAvgIterations);
    };
    state.counters["sibling_tree_sites"] = per_iter(prof.sibling_tree_sites);
    state.counters["sibling_tree_convs"] = per_iter(prof.sibling_tree_convs);
    state.counters["sibling_tree_reused"] =
        per_iter(prof.sibling_tree_reused);
    state.counters["sibling_except_convs"] =
        per_iter(prof.sibling_except_convs);
    state.counters["batched_pair_convs"] = per_iter(prof.batched_pair_convs);
  }
}
BENCHMARK(BM_HighFanoutDelta)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_ApplyBatch(benchmark::State& state) {
  ViewServer server;
  RegisterViews(&server, nullptr);
  DocumentStore store(&server);
  PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  const PersistentId target = SomeProjectPid(pd);
  if (store.Put("doc", std::move(pd)).ok() == false) return;
  double p = 0.29;
  for (auto _ : state) {
    p = (p == 0.29) ? 0.28 : 0.29;
    benchmark::DoNotOptimize(
        store.Apply("doc", {DocMutation::SetEdgeProb(target, p)}));
  }
  state.counters["batches"] = static_cast<double>(store.stats().batches);
}
BENCHMARK(BM_ApplyBatch)->Arg(100)->Arg(300)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
