// Sharded-corpus benchmarks (ISSUE 10 acceptance: the cross-shard
// AnswerAllDocuments fan-out must scale with the shard count — >= 1.5x
// from 1 to 4 shards on a multi-core box).
//
//   * BM_CorpusFanOut/<s>  — AnswerAllDocuments over a fixed 16-document
//     personnel corpus split across <s> shards. Each shard's ViewServer is
//     pinned to ONE worker thread so the measured scaling is shard-level
//     parallelism (one fan-out thread per shard), not the intra-shard pool.
//   * BM_CorpusChurn/<s>   — the serving write path through the router:
//     one routed Apply (a single SetEdgeProb) + MaterializeIncremental per
//     iteration, round-robin across the corpus. Per-document cost is
//     shard-count independent; this guards the routing layer's overhead.
//
// Reference numbers live in bench/trajectory/PR10_shard.json.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "gen/docgen.h"
#include "serve/sharded_corpus.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

constexpr int kDocs = 16;
constexpr int kPersons = 30;

std::vector<Pattern> Queries() {
  return {Tp("IT-personnel//person/bonus"),
          Tp("IT-personnel//person[name/Rick]/bonus")};
}

std::unique_ptr<ShardedCorpus> BuildCorpus(int shards,
                                           benchmark::State& state) {
  ShardedCorpusOptions options;
  options.shards = shards;
  options.server.threads = 1;  // Scaling under test is shard-level.
  auto corpus = std::make_unique<ShardedCorpus>(options);
  corpus->AddView("vbonus", Tp("IT-personnel//person/bonus"));
  corpus->AddView("vrick", Tp("IT-personnel//person[name/Rick]/bonus"));
  Rng rng(2026);
  for (int i = 0; i < kDocs; ++i) {
    if (!corpus
             ->Put("doc-" + std::to_string(i),
                   PersonnelPDocument(rng, kPersons, 0.2, 0.3))
             .ok()) {
      state.SkipWithError("Put failed");
      return nullptr;
    }
  }
  return corpus;
}

// Mux name alternatives: probabilities free to move below their initial
// value, so the churn stream is always valid.
std::vector<std::pair<PersistentId, double>> MuxAlternatives(
    const PDocument& doc) {
  std::vector<std::pair<PersistentId, double>> out;
  for (NodeId n = 0; n < doc.size(); ++n) {
    if (!doc.ordinary(n) || doc.detached(n)) continue;
    const NodeId parent = doc.parent(n);
    if (parent != kNullNode && !doc.ordinary(parent) &&
        doc.kind(parent) == PKind::kMux) {
      out.push_back({doc.pid(n), doc.edge_prob(n)});
    }
  }
  return out;
}

void BM_CorpusFanOut(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto corpus = BuildCorpus(shards, state);
  if (!corpus) return;
  const std::vector<Pattern> queries = Queries();
  int64_t answers = 0;
  for (auto _ : state) {
    const auto results = corpus->AnswerAllDocuments(queries);
    if (results.size() != kDocs) {
      state.SkipWithError("fan-out lost documents");
      return;
    }
    for (const auto& doc : results) answers += int64_t(doc.answers.size());
  }
  benchmark::DoNotOptimize(answers);
  const ShardedCorpusStats stats = corpus->stats();
  state.counters["docs"] = kDocs;
  state.counters["shards"] = shards;
  state.counters["fanouts"] = static_cast<double>(stats.fanouts);
  state.counters["queries"] = static_cast<double>(stats.queries);
  state.counters["plan_cache_misses"] =
      static_cast<double>(stats.plan_cache_misses);
}
BENCHMARK(BM_CorpusFanOut)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CorpusChurn(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto corpus = BuildCorpus(shards, state);
  if (!corpus) return;
  // Per-document alternative sets, probed through the router exactly like
  // a client would address them.
  std::vector<std::string> names = corpus->Names();
  std::vector<std::vector<std::pair<PersistentId, double>>> alternatives;
  for (const std::string& name : names) {
    alternatives.push_back(MuxAlternatives(*corpus->Find(name)));
  }
  Rng rng(31);
  size_t next = 0;
  for (auto _ : state) {
    const std::string& name = names[next];
    const auto& alts = alternatives[next];
    next = (next + 1) % names.size();
    const auto& [pid, initial] = alts[rng.NextBounded(alts.size())];
    if (!corpus
             ->Apply(name, {DocMutation::SetEdgeProb(
                               pid, initial * rng.NextDouble())})
             .ok()) {
      state.SkipWithError("Apply failed");
      return;
    }
    if (!corpus->MaterializeIncremental(name).ok()) {
      state.SkipWithError("MaterializeIncremental failed");
      return;
    }
  }
  const ShardedCorpusStats stats = corpus->stats();
  state.counters["shards"] = shards;
  state.counters["batches"] = static_cast<double>(stats.store.batches);
}
BENCHMARK(BM_CorpusChurn)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
