// Batched single-pass anchored evaluation vs the per-candidate loop.
//
// Claimed shape (ISSUE 1 acceptance): on a generated document with ≥ 500
// candidate nodes, BatchSelectionProbabilities — one DP pass carrying
// per-anchor state — is at least 5× faster than running the anchored DP
// once per candidate, because the loop re-walks the whole p-document per
// candidate while the batch pass pays one walk plus per-anchor state
// proportional to each anchor's depth.

#include <benchmark/benchmark.h>

#include "bench_flags.h"
#include "gen/docgen.h"
#include "prob/engine.h"
#include "prob/eval_session.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

PDocument Doc(int persons) {
  Rng rng(42);
  return PersonnelPDocument(rng, persons);
}

int CandidateCount(const PDocument& pd, const Pattern& q) {
  int count = 0;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == q.OutLabel()) ++count;
  }
  return count;
}

// Reference: the old Materialize inner loop — anchored DP per candidate.
void BM_PerCandidateLoop(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    std::vector<NodeProb> result;
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (!pd.ordinary(n) || pd.label(n) != q.OutLabel()) continue;
      const double p = SelectionProbability(pd, q, n);
      if (p > 1e-12) result.push_back({n, p});
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = CandidateCount(pd, q);
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_PerCandidateLoop)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// One pass for all candidates. Under --profile the flat-dist kernel's
// breakdown counters (per iteration) land in the JSON row.
void BM_BatchSinglePass(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  DpScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BatchAnchoredProbabilities(pd, {&q}, &scratch, {}));
  }
  state.counters["candidates"] = CandidateCount(pd, q);
  state.counters["pdoc_nodes"] = pd.size();
  if (benchflags::Profile()) {
    const DistProfile& prof =
        static_cast<const DpScratch&>(scratch).profile();
    const auto per_iter = [&](uint64_t v) {
      return benchmark::Counter(static_cast<double>(v),
                                benchmark::Counter::kAvgIterations);
    };
    state.counters["table_allocs"] = per_iter(prof.table_allocs);
    state.counters["table_reuses"] = per_iter(prof.table_reuses);
    state.counters["rehashes"] = per_iter(prof.rehashes);
    state.counters["narrow_nodes"] = per_iter(prof.narrow_nodes);
    state.counters["wide_nodes"] = per_iter(prof.wide_nodes);
    state.counters["keys_remapped"] = per_iter(prof.keys_remapped);
    state.counters["dense_convs"] = per_iter(prof.dense_convs);
    state.counters["hash_convs"] = per_iter(prof.hash_convs);
    state.counters["sibling_tree_sites"] = per_iter(prof.sibling_tree_sites);
    state.counters["sibling_tree_convs"] = per_iter(prof.sibling_tree_convs);
    state.counters["sibling_tree_reused"] =
        per_iter(prof.sibling_tree_reused);
    state.counters["sibling_except_convs"] =
        per_iter(prof.sibling_except_convs);
    state.counters["batched_pair_convs"] = per_iter(prof.batched_pair_convs);
    state.counters["combine_scratch_reuses"] =
        per_iter(prof.combine_scratch_reuses);
    state.counters["arena_peak_bytes"] =
        benchmark::Counter(static_cast<double>(prof.arena_peak_bytes));
  }
}
BENCHMARK(BM_BatchSinglePass)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// The full session path the Rewriter materialization uses.
void BM_SessionEvaluateTP(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    EvalSession session(pd);
    benchmark::DoNotOptimize(session.EvaluateTP(q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_SessionEvaluateTP)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Batched TP∩ (two members, shared anchor) vs the per-candidate loop.
void BM_BatchIntersection(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern a = Tp("IT-personnel//person/bonus[laptop]");
  const Pattern b = Tp("IT-personnel//person[name/Rick]/bonus");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchAnchoredProbabilities(pd, {&a, &b}));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_BatchIntersection)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pxv
