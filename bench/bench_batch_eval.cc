// Batched single-pass anchored evaluation vs the per-candidate loop.
//
// Claimed shape (ISSUE 1 acceptance): on a generated document with ≥ 500
// candidate nodes, BatchSelectionProbabilities — one DP pass carrying
// per-anchor state — is at least 5× faster than running the anchored DP
// once per candidate, because the loop re-walks the whole p-document per
// candidate while the batch pass pays one walk plus per-anchor state
// proportional to each anchor's depth.

#include <benchmark/benchmark.h>

#include "gen/docgen.h"
#include "prob/engine.h"
#include "prob/eval_session.h"
#include "prob/query_eval.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

PDocument Doc(int persons) {
  Rng rng(42);
  return PersonnelPDocument(rng, persons);
}

int CandidateCount(const PDocument& pd, const Pattern& q) {
  int count = 0;
  for (NodeId n = 0; n < pd.size(); ++n) {
    if (pd.ordinary(n) && pd.label(n) == q.OutLabel()) ++count;
  }
  return count;
}

// Reference: the old Materialize inner loop — anchored DP per candidate.
void BM_PerCandidateLoop(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    std::vector<NodeProb> result;
    for (NodeId n = 0; n < pd.size(); ++n) {
      if (!pd.ordinary(n) || pd.label(n) != q.OutLabel()) continue;
      const double p = SelectionProbability(pd, q, n);
      if (p > 1e-12) result.push_back({n, p});
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["candidates"] = CandidateCount(pd, q);
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_PerCandidateLoop)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// One pass for all candidates.
void BM_BatchSinglePass(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchSelectionProbabilities(pd, q));
  }
  state.counters["candidates"] = CandidateCount(pd, q);
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_BatchSinglePass)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// The full session path the Rewriter materialization uses.
void BM_SessionEvaluateTP(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    EvalSession session(pd);
    benchmark::DoNotOptimize(session.EvaluateTP(q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_SessionEvaluateTP)->Arg(50)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Batched TP∩ (two members, shared anchor) vs the per-candidate loop.
void BM_BatchIntersection(benchmark::State& state) {
  const PDocument pd = Doc(static_cast<int>(state.range(0)));
  const Pattern a = Tp("IT-personnel//person/bonus[laptop]");
  const Pattern b = Tp("IT-personnel//person[name/Rick]/bonus");
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchAnchoredProbabilities(pd, {&a, &b}));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_BatchIntersection)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pxv
