// Ablation experiments for the design choices called out in DESIGN.md:
//
//   A1  sparse (A,D)-state DP vs possible-world enumeration — the DP is the
//       reason q(P̂) is PTime in data; enumeration explodes with the number
//       of distributional nodes.
//   A2  homomorphism fast path vs canonical-model containment — the exact
//       test's exponential fallback is rarely hit, and the fast path keeps
//       the decision procedures cheap.
//   A3  label-relevance pruning in the DP engine — skipping query-irrelevant
//       regions pays off on documents with large irrelevant subtrees.

#include <benchmark/benchmark.h>

#include "gen/docgen.h"
#include "prob/naive.h"
#include "prob/query_eval.h"
#include "tp/containment.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

// A1 — the engine on documents with a growing number of mux nodes.
void BM_EngineOnMuxChains(benchmark::State& state) {
  Rng rng(3);
  DocGenOptions o;
  o.target_nodes = static_cast<int>(state.range(0));
  o.dist_prob = 0.5;
  const PDocument pd = RandomPDocument(rng, o);
  const Pattern q = Tp("root//l1[l2]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateTP(pd, q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_EngineOnMuxChains)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Arg(200)
    ->Arg(2000)->Unit(benchmark::kMicrosecond);

// A1 baseline — enumeration on the same documents (only feasible tiny).
void BM_NaiveOnMuxChains(benchmark::State& state) {
  Rng rng(3);
  DocGenOptions o;
  o.target_nodes = static_cast<int>(state.range(0));
  o.dist_prob = 0.5;
  const PDocument pd = RandomPDocument(rng, o);
  const Pattern q = Tp("root//l1[l2]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveEvaluateTP(pd, q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_NaiveOnMuxChains)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

// A2 — containment where the homomorphism succeeds immediately vs a case
// that needs canonical models (the redundant //-predicate).
void BM_ContainmentHomFastPath(benchmark::State& state) {
  const Pattern sup = Tp("a//b[c/d]/e");
  const Pattern sub = Tp("a/x/b[c/d][f]/e");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(sup, sub));
  }
}
BENCHMARK(BM_ContainmentHomFastPath)->Unit(benchmark::kNanosecond);

void BM_ContainmentCanonicalModels(benchmark::State& state) {
  // hom(sup→sub) fails, the canonical-model sweep decides: sub ⊑ sup holds
  // because [.//c] is implied by [b/c].
  const Pattern sup = Tp("a[b/c][.//c]/x");
  const Pattern sub = Tp("a[b/c]/x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Contains(sup, sub));
  }
}
BENCHMARK(BM_ContainmentCanonicalModels)->Unit(benchmark::kMicrosecond);

// A3 — a query about one small region of a document that is mostly
// irrelevant: the relevance pruning keeps the DP focused.
void BM_RelevancePruning(benchmark::State& state) {
  Rng rng(9);
  // Personnel document plus a huge irrelevant subtree of fresh labels.
  PDocument pd = PersonnelPDocument(rng, 10);
  const NodeId junk = pd.AddOrdinary(pd.root(), Intern("archive"));
  NodeId cur = junk;
  for (int i = 0; i < state.range(0); ++i) {
    cur = pd.AddOrdinary(cur, Intern("entry"));
    pd.AddOrdinary(cur, Intern("blob"));
  }
  const Pattern q = Tp("IT-personnel//person/bonus[laptop]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateTP(pd, q));
  }
  state.counters["pdoc_nodes"] = pd.size();
}
BENCHMARK(BM_RelevancePruning)->Arg(0)->Arg(1000)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
