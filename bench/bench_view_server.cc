// ViewServer serving-path benchmarks:
//
//   * cold Answer    — compile (TPrewrite + TPIrewrite) on every call, the
//     pre-serve behavior of Rewriter::Answer;
//   * cached Answer  — the ViewServer plan cache skips the rewriting search,
//     leaving only plan selection + f_r execution;
//   * Materialize    — serial single-session vs. fanned out across the
//     thread pool (one EvalSession per worker shard). The parallel win
//     scales with cores; the `threads` counter records the pool size so the
//     JSON stays interpretable on single-core runners.

#include <benchmark/benchmark.h>

#include "gen/docgen.h"
#include "rewrite/rewriter.h"
#include "serve/view_server.h"
#include "tp/parser.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pxv {
namespace {

// Four views make the §4/§5 compile search dominate execution over the
// (selective, hence small) extensions by orders of magnitude, while keeping
// the cold path benchmarkable at all: the TP∩ decomposition search is
// exponential in the registry size (Theorem 4), so 6+ views already push a
// single compile into tens of seconds.
void RegisterViews(Rewriter* rewriter, ViewServer* server) {
  const char* defs[] = {
      "IT-personnel//person/bonus",
      "IT-personnel//person[name/Rick]/bonus",
      "IT-personnel//person/bonus[laptop]",
      "IT-personnel//person[name/Rick]/bonus[laptop]",
  };
  int i = 0;
  for (const char* def : defs) {
    const std::string name = "v" + std::to_string(i++);
    if (rewriter != nullptr) rewriter->AddView(name, Tp(def));
    if (server != nullptr) server->AddView(name, Tp(def));
  }
}

Pattern BenchQuery() {
  return Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
}

PDocument BenchDoc(int persons) {
  Rng rng(2026);
  return PersonnelPDocument(rng, persons, /*rick_fraction=*/0.2,
                            /*laptop_fraction=*/0.3);
}

// The plan-cache miss path: the full compile (TPrewrite + TPIrewrite, the
// latter exponential in the registry) plus execution — what every Answer
// call paid before the serve layer, and what PlanFor pays exactly once.
void BM_AnswerCold(benchmark::State& state) {
  const PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  Rewriter rewriter;
  RegisterViews(&rewriter, nullptr);
  const ViewExtensions exts = rewriter.Materialize(pd);
  const Pattern q = BenchQuery();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteQueryPlan(rewriter.Compile(q), exts));
  }
  state.counters["views"] = static_cast<double>(rewriter.views().size());
}
BENCHMARK(BM_AnswerCold)->Arg(20)->Arg(60)->Unit(benchmark::kMicrosecond);

// Served behavior: repeated (and isomorphic) queries hit the plan cache.
void BM_AnswerCached(benchmark::State& state) {
  const PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  ViewServer server;
  RegisterViews(nullptr, &server);
  server.Materialize(pd);
  const Pattern q = BenchQuery();
  benchmark::DoNotOptimize(server.Answer(q));  // Warm the plan cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Answer(q));
  }
  const ViewServerStats stats = server.stats();
  state.counters["plan_cache_hits"] =
      static_cast<double>(stats.plan_cache_hits);
}
BENCHMARK(BM_AnswerCached)->Arg(20)->Arg(60)->Unit(benchmark::kMicrosecond);

void BM_MaterializeSerial(benchmark::State& state) {
  const PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  Rewriter rewriter;
  RegisterViews(&rewriter, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewriter.Materialize(pd));
  }
  state.counters["views"] = static_cast<double>(rewriter.views().size());
}
BENCHMARK(BM_MaterializeSerial)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_MaterializeParallel(benchmark::State& state) {
  const PDocument pd = BenchDoc(static_cast<int>(state.range(0)));
  Rewriter rewriter;
  RegisterViews(&rewriter, nullptr);
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rewriter.Materialize(pd, pool));
  }
  state.counters["views"] = static_cast<double>(rewriter.views().size());
  state.counters["threads"] = static_cast<double>(pool.size());
}
BENCHMARK(BM_MaterializeParallel)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

// Batched serving over a mixed query set, sharing cache and pool.
void BM_AnswerAll(benchmark::State& state) {
  const PDocument pd = BenchDoc(60);
  ViewServer server;
  RegisterViews(nullptr, &server);
  server.Materialize(pd);
  const std::vector<Pattern> queries = {
      Tp("IT-personnel//person[name/Rick]/bonus[laptop]"),
      Tp("IT-personnel//person/bonus[laptop]"),
      Tp("IT-personnel//person[name/Rick]/bonus"),
      Tp("IT-personnel//person/bonus"),
  };
  benchmark::DoNotOptimize(server.AnswerAll(queries));  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.AnswerAll(queries));
  }
  state.counters["queries"] = static_cast<double>(queries.size());
}
BENCHMARK(BM_AnswerAll)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
