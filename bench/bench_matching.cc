// Experiment E6 — Theorem 4: deciding whether a TP∩-rewriting from pairwise
// c-independent views exists is NP-hard (reduction from k-dimensional
// perfect matching). Claimed shape: the exact subset search blows up with
// instance size, while the per-pair c-independence test (the reduction's
// building block) stays polynomial.

#include <benchmark/benchmark.h>

#include "gen/matching.h"
#include "rewrite/cindependence.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/ops.h"
#include "util/random.h"

namespace pxv {
namespace {

void BM_SubsetSearchPlanted(benchmark::State& state) {
  Rng rng(5);
  const int s = static_cast<int>(state.range(0));
  const int extra = static_cast<int>(state.range(1));
  const Hypergraph h = PlantedMatchingInstance(rng, s, 3, extra);
  std::vector<NamedView> views = MatchingViews(h);
  views.push_back({"mb", MainBranchOnly(MatchingQuery(s))});
  const Pattern q = MatchingQuery(s);
  bool found = false;
  for (auto _ : state) {
    found = FindPairwiseIndependentSubset(q, views).has_value();
    benchmark::DoNotOptimize(found);
  }
  state.counters["edges"] = static_cast<double>(h.edges.size());
  state.counters["found"] = found ? 1 : 0;
}
BENCHMARK(BM_SubsetSearchPlanted)
    ->Args({6, 2})->Args({6, 4})->Args({6, 6})
    ->Args({9, 2})->Args({9, 4})->Args({9, 6})
    ->Args({12, 4})
    ->Unit(benchmark::kMillisecond);

// The polynomial building block: one pairwise c-independence test on
// reduction views of growing vertex count.
void BM_PairwiseTest(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  Hypergraph h;
  h.s = s;
  h.k = 3;
  h.edges = {{0, 1, 2}, {s - 3, s - 2, s - 1}};
  const auto views = MatchingViews(h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CIndependent(views[0].def, views[1].def));
  }
}
BENCHMARK(BM_PairwiseTest)->Arg(6)->Arg(9)->Arg(12)->Arg(18)->Arg(24)
    ->Unit(benchmark::kMicrosecond);

// The reference hypergraph solver, for scale comparison.
void BM_ReferenceMatchingSolver(benchmark::State& state) {
  Rng rng(8);
  const Hypergraph h = PlantedMatchingInstance(
      rng, static_cast<int>(state.range(0)), 3,
      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HasPerfectMatching(h));
  }
}
BENCHMARK(BM_ReferenceMatchingSolver)
    ->Args({9, 6})->Args({12, 8})->Args({15, 10})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
