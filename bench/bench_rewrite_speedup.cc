// Experiment E4 — the paper's motivation (§1, §7): answering a query from
// materialized probabilistic views costs no more than evaluating it over the
// original p-document, and is much cheaper when extensions are small
// relative to the document (selective views).
//
// Claimed shape: plan-over-extension beats direct evaluation, with the gap
// widening as the view gets more selective (fewer Ricks).

#include <benchmark/benchmark.h>

#include "gen/docgen.h"
#include "prob/query_eval.h"
#include "rewrite/fr_tp.h"
#include "rewrite/rewriter.h"
#include "tp/parser.h"
#include "util/random.h"

namespace pxv {
namespace {

struct Workload {
  PDocument pd;
  Pattern q;
  TpRewriting rw;
  ViewExtensions exts;
};

Workload MakeWorkload(int persons, double rick_fraction) {
  Rng rng(2025);
  Workload w{PersonnelPDocument(rng, persons, rick_fraction),
             Tp("IT-personnel//person[name/Rick]/bonus[laptop]"),
             {},
             {}};
  Rewriter rewriter;
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  const auto rws = TPrewrite(w.q, rewriter.views());
  w.rw = rws.at(0);
  w.exts = rewriter.Materialize(w.pd);
  return w;
}

void BM_DirectEvaluation(benchmark::State& state) {
  const Workload w =
      MakeWorkload(static_cast<int>(state.range(0)), state.range(1) / 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateTP(w.pd, w.q));
  }
  state.counters["pdoc_nodes"] = w.pd.size();
}
BENCHMARK(BM_DirectEvaluation)
    ->Args({50, 30})->Args({100, 30})->Args({200, 30})->Args({400, 30})
    ->Args({200, 10})->Args({200, 60})
    ->Unit(benchmark::kMicrosecond);

void BM_AnswerFromViews(benchmark::State& state) {
  const Workload w =
      MakeWorkload(static_cast<int>(state.range(0)), state.range(1) / 100.0);
  const PDocument& ext = w.exts.at("rick");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteTpRewriting(w.rw, ext));
  }
  state.counters["extension_nodes"] = ext.size();
}
BENCHMARK(BM_AnswerFromViews)
    ->Args({50, 30})->Args({100, 30})->Args({200, 30})->Args({400, 30})
    ->Args({200, 10})->Args({200, 60})
    ->Unit(benchmark::kMicrosecond);

// Rewriting *decision* cost is negligible next to either evaluation.
void BM_RewriteDecision(benchmark::State& state) {
  Rewriter rewriter;
  rewriter.AddView("rick", Tp("IT-personnel//person[name/Rick]/bonus"));
  const Pattern q = Tp("IT-personnel//person[name/Rick]/bonus[laptop]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(TPrewrite(q, rewriter.views()));
  }
}
BENCHMARK(BM_RewriteDecision)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pxv
