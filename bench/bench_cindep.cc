// Experiment E2 — Proposition 2: c-independence of TP queries is decidable
// in PTime. Claimed shape: the syntactic test's cost grows polynomially with
// pattern size (main branch length and predicate count).

#include <benchmark/benchmark.h>

#include <string>

#include "rewrite/cindependence.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// Builds a /-chain query of the given depth with a predicate on every other
// node: a0[p0]/a1/a2[p2]/…
Pattern ChainWithPredicates(int depth, const char* pred_prefix) {
  std::string text = "r";
  for (int i = 1; i < depth; ++i) {
    text += "/n" + std::to_string(i);
    if (i % 2 == 0) {
      text += std::string("[") + pred_prefix + std::to_string(i) + "]";
    }
  }
  return Tp(text);
}

void BM_CIndependentChains(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const Pattern q1 = ChainWithPredicates(depth, "x");
  const Pattern q2 = ChainWithPredicates(depth, "y");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CIndependent(q1, q2));
  }
  state.counters["pattern_nodes"] = q1.size();
}
BENCHMARK(BM_CIndependentChains)->DenseRange(4, 24, 4)
    ->Unit(benchmark::kMicrosecond);

// With descendant edges, alignments multiply but remain polynomial for
// fixed structure; this sweep doubles one // segment.
void BM_CIndependentDescendants(benchmark::State& state) {
  const int mid = static_cast<int>(state.range(0));
  std::string t1 = "r[x]", t2 = "r";
  for (int i = 0; i < mid; ++i) {
    t1 += "/m";
    t2 += "/m";
  }
  t1 += "//z";
  t2 += "[y]//z";
  const Pattern q1 = Tp(t1), q2 = Tp(t2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CIndependent(q1, q2));
  }
}
BENCHMARK(BM_CIndependentDescendants)->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

// The dependent verdict (early exit) on the paper's Example 11 shapes.
void BM_CIndependentExample11(benchmark::State& state) {
  const Pattern v_prime = Tp("a[.//c]/b");
  const Pattern q_dprime = Tp("a/b[c]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CIndependent(v_prime, q_dprime));
  }
}
BENCHMARK(BM_CIndependentExample11)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace pxv
