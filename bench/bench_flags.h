// Flags shared by every bench_* target, parsed by the common main
// (json_main.cc) before Google Benchmark sees argv:
//   --smoke    caps measuring time (CI sanity runs);
//   --profile  asks benchmarks that support it to emit kernel breakdown
//              counters (table allocations, rehashes, narrow- vs wide-key
//              node counts, ...) into their rows — and thus into
//              BENCH_<name>.json.

#ifndef PXV_BENCH_BENCH_FLAGS_H_
#define PXV_BENCH_BENCH_FLAGS_H_

namespace pxv {
namespace benchflags {

/// True when the binary was invoked with --profile.
bool Profile();

/// Set by json_main.cc during argv parsing.
void SetProfile(bool enabled);

}  // namespace benchflags
}  // namespace pxv

#endif  // PXV_BENCH_BENCH_FLAGS_H_
