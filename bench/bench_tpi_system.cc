// Experiment E7 — Propositions 5/6: building the S(q,V) system and testing
// unique solvability is PTime in the size of the query and views (modulo the
// TP∩-equivalence tests, which are PTime for extended skeletons).
//
// Claimed shape: decomposition + rational elimination scale polynomially
// with the number of views and with the query's main branch length.

#include <benchmark/benchmark.h>

#include <string>

#include "rewrite/decomposition.h"
#include "rewrite/tpi_rewrite.h"
#include "tp/parser.h"

namespace pxv {
namespace {

// q = n0[p0]/n1[p1]/…/n_{d-1}[p_{d-1}]; views drop one predicate each
// (Example 16's shape, generalized), plus the bare chain (the appearance
// view of Lemma 3).
struct Instance {
  Pattern q;
  std::vector<Pattern> views;
};

Instance MakeInstance(int depth) {
  std::string qt = "n0[p0]";
  for (int i = 1; i < depth; ++i) {
    qt += "/n" + std::to_string(i) + "[p" + std::to_string(i) + "]";
  }
  Instance inst{Tp(qt), {}};
  for (int drop = 0; drop < depth; ++drop) {
    std::string vt = "n0";
    if (drop != 0) vt += "[p0]";
    for (int i = 1; i < depth; ++i) {
      vt += "/n" + std::to_string(i);
      if (i != drop) vt += "[p" + std::to_string(i) + "]";
    }
    inst.views.push_back(Tp(vt));
  }
  std::string chain = "n0";
  for (int i = 1; i < depth; ++i) chain += "/n" + std::to_string(i);
  inst.views.push_back(Tp(chain));
  return inst;
}

void BM_DecomposeAndSolve(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  bool solvable = false;
  for (auto _ : state) {
    const ViewDecomposition dec = DecomposeViews(inst.q, inst.views);
    solvable = SolveSystem(dec).has_value();
    benchmark::DoNotOptimize(solvable);
  }
  state.counters["views"] = static_cast<double>(inst.views.size());
  state.counters["solvable"] = solvable ? 1 : 0;
}
BENCHMARK(BM_DecomposeAndSolve)->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

// Full TPIrewrite on Example 16-style instances (includes the canonical
// plan equivalence test and compensated-view expansion).
void BM_TPIrewriteEndToEnd(benchmark::State& state) {
  const Instance inst = MakeInstance(static_cast<int>(state.range(0)));
  std::vector<NamedView> views;
  for (size_t i = 0; i < inst.views.size(); ++i) {
    views.push_back({"v" + std::to_string(i), inst.views[i].Clone()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TPIrewrite(inst.q, views));
  }
}
BENCHMARK(BM_TPIrewriteEndToEnd)->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pxv
